//! Deterministic fault injection.
//!
//! The fault layer sits between the drain of a protocol's `Send` commands
//! and the scheduling of the corresponding `Deliver` events: every message
//! the simulator is about to put on the wire passes through
//! `FaultLayer::route`, which may drop it (per-link Bernoulli loss or an
//! active partition cut), delay it (latency degradation, jitter, or a
//! delaying partition) or pass it through untouched.
//!
//! Three fault families are modelled:
//!
//! * **Per-link message loss** ([`LinkFaults::loss_rate`]) — each
//!   transmission is lost independently with the configured probability.
//!   This models silent datagram loss / undetected corruption below the
//!   protocol's horizon.
//! * **Latency degradation** ([`LinkFaults::latency_factor`],
//!   [`LinkFaults::jitter`]) — every sampled latency is scaled by a factor
//!   and/or stretched by a uniform per-message jitter, modelling congested
//!   or degraded paths.
//! * **Timed network partitions** ([`PartitionSpec`]) — for a configured
//!   interval, traffic crossing a cut of the node set is dropped
//!   ([`PartitionMode::Drop`]) or held back until the partition heals
//!   ([`PartitionMode::Delay`]). Connections crossing the cut are *not*
//!   torn down: the model is an outage shorter than the transport's
//!   connection time-out (a real 10 s partition does not reset TCP), so
//!   failure detection stays quiet and recovery must come from the
//!   protocol's own repair machinery. Connection *attempts* across an
//!   active cut do fail after the failure-detection delay, exactly like
//!   connecting to a crashed peer.
//!
//! # Split-seed RNG discipline
//!
//! Fault draws must never perturb the rest of the simulation: enabling a
//! 0 %-loss fault layer has to produce a bit-identical run to no fault layer
//! at all, and raising the loss rate on one link must not change the random
//! draws on any other link. Draws therefore come from a dedicated
//! counter-based PRF (SplitMix64 over `(fault seed, link, counter)`), where
//! the fault seed is derived once from the master seed (the same discipline
//! as the reference-latency RNG introduced for `typical_latency`) and each
//! directed link advances its own counter. Node RNGs, the master RNG and
//! the reference RNG are never touched.

use crate::links::PerLink;
use crate::node::NodeId;
use crate::seed::{mix64, split_mix64, GOLDEN_GAMMA};
use crate::time::{SimDuration, SimTime};

/// Stream constant separating the fault PRF from the other consumers of the
/// master seed.
const FAULT_STREAM: u64 = 0xFA17_5EED;

/// The counter-based per-link fault PRF: a pure function of
/// `(master seed, directed link, draw counter)`.
///
/// This is the single draw function behind every fault decision, shared by
/// the simulator's `FaultLayer` and the live runtime's transport fault
/// shim — for the same master seed, the `n`-th draw on directed link
/// `from → to` is the same number in both execution modes, which is what
/// makes a `FaultSpec` schedule *mean* the same thing in sim and live.
/// Callers own the per-link counters; the type itself is stateless.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPrf {
    seed: u64,
}

impl FaultPrf {
    /// Derives the fault PRF from the master seed (the same split-seed
    /// discipline as every other consumer: faults get their own stream, so
    /// enabling them never perturbs node, master or reference RNGs).
    pub fn new(master_seed: u64) -> Self {
        FaultPrf {
            seed: split_mix64(master_seed, FAULT_STREAM),
        }
    }

    /// The `counter`-th uniform draw in `[0, 1)` of the directed link
    /// `from → to`. Counters start at 1 (the `FaultLayer` increments
    /// before drawing); each `(link, counter)` pair is drawn independently.
    pub fn unit_draw(&self, from: NodeId, to: NodeId, counter: u64) -> f64 {
        let link_seed = split_mix64(self.seed, ((from.0 as u64) << 32) | to.0 as u64);
        let bits = mix64(link_seed ^ counter.wrapping_mul(GOLDEN_GAMMA));
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-link stochastic fault profile (loss and latency degradation).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that any single transmission is silently
    /// lost. `0.0` disables loss.
    pub loss_rate: f64,
    /// Maximum extra per-message delay; each message is stretched by a
    /// uniform draw in `[0, jitter]`. [`SimDuration::ZERO`] disables jitter.
    pub jitter: SimDuration,
    /// Multiplier applied to every sampled link latency (`1.0` = nominal).
    pub latency_factor: f64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            loss_rate: 0.0,
            jitter: SimDuration::ZERO,
            latency_factor: 1.0,
        }
    }
}

impl LinkFaults {
    /// True if this profile cannot affect any message (the pay-for-what-
    /// you-use fast path: an inert profile skips the fault layer entirely).
    pub fn is_inert(&self) -> bool {
        self.loss_rate <= 0.0 && self.jitter.is_zero() && self.latency_factor == 1.0
    }
}

/// What happens to traffic crossing an active partition cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// Cross-cut messages are silently dropped (counted in
    /// [`crate::NetStats::messages_cut_by_partition`]).
    Drop,
    /// Cross-cut messages are held and delivered after the partition heals
    /// (the original latency is re-applied from the heal instant, and FIFO
    /// ordering still holds per link).
    Delay,
}

/// A timed network partition: for `[start, end)`, the nodes in `island`
/// are cut from everyone else.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    island: Vec<NodeId>,
    /// First instant at which the cut is active.
    pub start: SimTime,
    /// Heal instant: the cut is inactive from here on.
    pub end: SimTime,
    /// Drop or delay cross-cut traffic.
    pub mode: PartitionMode,
}

impl PartitionSpec {
    /// Builds a partition cutting `island` from the rest of the node set
    /// over `[start, end)`. The island list is sorted and deduplicated.
    pub fn new(mut island: Vec<NodeId>, start: SimTime, end: SimTime, mode: PartitionMode) -> Self {
        assert!(start <= end, "partition must heal after it starts");
        island.sort_unstable();
        island.dedup();
        PartitionSpec {
            island,
            start,
            end,
            mode,
        }
    }

    /// The nodes forming the cut-away component, sorted ascending.
    pub fn island(&self) -> &[NodeId] {
        &self.island
    }

    /// True if the cut is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }

    /// True while active at `now` and `a`/`b` sit on opposite sides.
    pub fn cuts(&self, now: SimTime, a: NodeId, b: NodeId) -> bool {
        self.active_at(now) && (self.contains(a) != self.contains(b))
    }

    fn contains(&self, node: NodeId) -> bool {
        self.island.binary_search(&node).is_ok()
    }
}

/// Static fault configuration of a run ([`crate::NetworkConfig::faults`]).
/// Partitions can also be installed at runtime through
/// [`crate::Network::add_partition`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// The per-link stochastic profile.
    pub link: LinkFaults,
    /// Timed partitions, each active over its own window.
    pub partitions: Vec<PartitionSpec>,
}

impl FaultConfig {
    /// True if nothing in this configuration can ever affect a message.
    pub fn is_inert(&self) -> bool {
        self.link.is_inert() && self.partitions.is_empty()
    }
}

/// The routing verdict for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Routed {
    /// Deliver at the given absolute time.
    Deliver(SimTime),
    /// Lost to per-link Bernoulli loss.
    LostToFaults,
    /// Dropped by an active partition cut.
    CutByPartition,
}

/// Run-time state of the fault layer: the live profile, the active
/// partitions and the per-link draw counters.
#[derive(Debug, Default)]
pub(crate) struct FaultLayer {
    link: LinkFaults,
    partitions: Vec<PartitionSpec>,
    /// Per directed link, the number of fault draws taken so far — the
    /// counter of the per-link PRF stream. Pruned alongside the rest of the
    /// per-link state when a node crashes.
    counters: PerLink<u64>,
    prf: FaultPrf,
    /// Cached `link.is_inert() && partitions.is_empty()`; lets the send
    /// path skip the layer with a single branch.
    inert: bool,
}

impl FaultLayer {
    pub fn new(master_seed: u64, config: FaultConfig) -> Self {
        let inert = config.is_inert();
        FaultLayer {
            link: config.link,
            partitions: config.partitions,
            counters: PerLink::default(),
            prf: FaultPrf::new(master_seed),
            inert,
        }
    }

    /// True if the layer cannot affect any message right now.
    pub fn is_inert(&self) -> bool {
        self.inert
    }

    /// Replaces the live per-link profile.
    pub fn set_link_faults(&mut self, link: LinkFaults) {
        self.link = link;
        self.recompute_inert();
    }

    /// Installs an additional partition.
    pub fn add_partition(&mut self, spec: PartitionSpec) {
        self.partitions.push(spec);
        self.recompute_inert();
    }

    fn recompute_inert(&mut self) {
        self.inert = self.link.is_inert() && self.partitions.is_empty();
    }

    /// True if an active partition currently separates `a` and `b`.
    pub fn is_cut(&self, now: SimTime, a: NodeId, b: NodeId) -> bool {
        self.partitions.iter().any(|p| p.cuts(now, a, b))
    }

    /// Drops every per-link counter involving `node` (both directions);
    /// called when the node crashes so the fault state stays bounded under
    /// churn, like the FIFO link clocks.
    pub fn prune(&mut self, node: NodeId) {
        self.counters.prune(node);
    }

    /// Retires partitions whose window has fully passed. Purely
    /// time-driven, hence deterministic.
    fn retire_expired(&mut self, now: SimTime) {
        if self.partitions.iter().any(|p| now >= p.end) {
            self.partitions.retain(|p| now < p.end);
            self.recompute_inert();
        }
    }

    /// One uniform draw in `[0, 1)` from the directed link's own PRF
    /// stream. Independent per link and per call; consumes no state shared
    /// with any other randomness in the simulation.
    fn unit_draw(&mut self, from: NodeId, to: NodeId) -> f64 {
        let n = self.counters.entry(from, to);
        *n += 1;
        self.prf.unit_draw(from, to, *n)
    }

    /// Routes one message sent at `now` with sampled `latency`. Callers
    /// must check [`Self::is_inert`] first (the inert path must not even
    /// enter here, so a disabled layer is provably free).
    pub fn route(
        &mut self,
        from: NodeId,
        to: NodeId,
        now: SimTime,
        latency: SimDuration,
    ) -> Routed {
        self.retire_expired(now);
        // A cut dominates the stochastic profile: traffic that cannot cross
        // the partition is never subject to loss or jitter draws (so a
        // partition never perturbs the loss stream of uncut links).
        for p in &self.partitions {
            if p.cuts(now, from, to) {
                return match p.mode {
                    PartitionMode::Drop => Routed::CutByPartition,
                    // Latency is charged from the *send* instant, with the
                    // heal as a floor: a frame in flight when the cut lands
                    // finishes its journey, everything else is released at
                    // the heal. The live shim implements the identical rule
                    // (release at the heal, real transit follows), so the
                    // two worlds share one reference point.
                    PartitionMode::Delay => Routed::Deliver((now + latency).max(p.end)),
                };
            }
        }
        let mut latency = latency;
        if !self.link.is_inert() {
            if self.link.loss_rate > 0.0 && self.unit_draw(from, to) < self.link.loss_rate {
                return Routed::LostToFaults;
            }
            if self.link.latency_factor != 1.0 {
                let scaled = latency.as_micros() as f64 * self.link.latency_factor.max(0.0);
                latency = SimDuration::from_micros(scaled.round() as u64);
            }
            if !self.link.jitter.is_zero() {
                let extra = self.link.jitter.as_micros() as f64 * self.unit_draw(from, to);
                latency += SimDuration::from_micros(extra.round() as u64);
            }
        }
        Routed::Deliver(now + latency)
    }

    /// Number of per-link draw counters currently tracked (test hook).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn tracked_counters(&self) -> usize {
        self.counters.tracked_links()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(link: LinkFaults, partitions: Vec<PartitionSpec>) -> FaultLayer {
        FaultLayer::new(0xB215A, FaultConfig { link, partitions })
    }

    #[test]
    fn inert_configs_are_detected() {
        assert!(FaultConfig::default().is_inert());
        assert!(LinkFaults::default().is_inert());
        assert!(!LinkFaults {
            loss_rate: 0.01,
            ..Default::default()
        }
        .is_inert());
        assert!(!LinkFaults {
            jitter: SimDuration::from_millis(1),
            ..Default::default()
        }
        .is_inert());
        assert!(!LinkFaults {
            latency_factor: 2.0,
            ..Default::default()
        }
        .is_inert());
        let mut l = layer(LinkFaults::default(), Vec::new());
        assert!(l.is_inert());
        l.set_link_faults(LinkFaults {
            loss_rate: 0.5,
            ..Default::default()
        });
        assert!(!l.is_inert());
        l.set_link_faults(LinkFaults::default());
        assert!(l.is_inert());
    }

    #[test]
    fn loss_rate_is_respected_and_per_link_independent() {
        let lossy = LinkFaults {
            loss_rate: 0.25,
            ..Default::default()
        };
        let mut l = layer(lossy.clone(), Vec::new());
        let latency = SimDuration::from_millis(1);
        let count_losses = |l: &mut FaultLayer, from: u32, to: u32, n: usize| {
            (0..n)
                .filter(|_| {
                    l.route(NodeId(from), NodeId(to), SimTime::ZERO, latency)
                        == Routed::LostToFaults
                })
                .count()
        };
        let lost = count_losses(&mut l, 0, 1, 4000);
        assert!(
            (800..1200).contains(&lost),
            "25% loss over 4000 draws lost {lost}"
        );
        // The draws on one link are independent of activity on another:
        // interleaving traffic on (2, 3) must not change (0, 1)'s stream.
        let mut a = layer(lossy.clone(), Vec::new());
        let mut b = layer(lossy, Vec::new());
        let seq_a: Vec<Routed> = (0..100)
            .map(|_| a.route(NodeId(0), NodeId(1), SimTime::ZERO, latency))
            .collect();
        let seq_b: Vec<Routed> = (0..100)
            .map(|_| {
                let _ = b.route(NodeId(2), NodeId(3), SimTime::ZERO, latency);
                b.route(NodeId(0), NodeId(1), SimTime::ZERO, latency)
            })
            .collect();
        assert_eq!(seq_a, seq_b, "per-link streams must not interfere");
    }

    #[test]
    fn zero_loss_never_drops_and_draws_nothing() {
        let mut l = layer(
            LinkFaults {
                latency_factor: 2.0,
                ..Default::default()
            },
            Vec::new(),
        );
        let verdict = l.route(
            NodeId(0),
            NodeId(1),
            SimTime::from_secs(1),
            SimDuration::from_millis(10),
        );
        assert_eq!(
            verdict,
            Routed::Deliver(SimTime::from_secs(1) + SimDuration::from_millis(20))
        );
        assert_eq!(l.tracked_counters(), 0, "factor-only profiles never draw");
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let jitter = SimDuration::from_millis(5);
        let mut l = layer(
            LinkFaults {
                jitter,
                ..Default::default()
            },
            Vec::new(),
        );
        let base = SimDuration::from_millis(10);
        for _ in 0..500 {
            match l.route(NodeId(0), NodeId(1), SimTime::ZERO, base) {
                Routed::Deliver(at) => {
                    assert!(at >= SimTime::ZERO + base);
                    assert!(at <= SimTime::ZERO + base + jitter);
                }
                other => panic!("jitter-only profile must deliver, got {other:?}"),
            }
        }
    }

    #[test]
    fn partition_cuts_drop_and_heal() {
        let spec = PartitionSpec::new(
            vec![NodeId(3), NodeId(1)],
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            PartitionMode::Drop,
        );
        assert_eq!(spec.island(), &[NodeId(1), NodeId(3)]);
        let mut l = layer(LinkFaults::default(), vec![spec]);
        let lat = SimDuration::from_millis(1);
        // Before the window: passes.
        assert!(matches!(
            l.route(NodeId(0), NodeId(1), SimTime::from_secs(5), lat),
            Routed::Deliver(_)
        ));
        // Inside the window: cross-cut dropped, intra-side passes.
        assert_eq!(
            l.route(NodeId(0), NodeId(1), SimTime::from_secs(15), lat),
            Routed::CutByPartition
        );
        assert_eq!(
            l.route(NodeId(1), NodeId(0), SimTime::from_secs(15), lat),
            Routed::CutByPartition
        );
        assert!(matches!(
            l.route(NodeId(1), NodeId(3), SimTime::from_secs(15), lat),
            Routed::Deliver(_)
        ));
        assert!(matches!(
            l.route(NodeId(0), NodeId(2), SimTime::from_secs(15), lat),
            Routed::Deliver(_)
        ));
        assert!(l.is_cut(SimTime::from_secs(15), NodeId(0), NodeId(1)));
        assert!(!l.is_cut(SimTime::from_secs(15), NodeId(0), NodeId(2)));
        // After heal: passes again, and the expired window is retired.
        assert!(matches!(
            l.route(NodeId(0), NodeId(1), SimTime::from_secs(20), lat),
            Routed::Deliver(_)
        ));
        assert!(l.is_inert(), "expired partitions are retired");
    }

    #[test]
    fn delaying_partition_releases_at_heal() {
        let heal = SimTime::from_secs(20);
        let spec = PartitionSpec::new(
            vec![NodeId(1)],
            SimTime::from_secs(10),
            heal,
            PartitionMode::Delay,
        );
        let mut l = layer(LinkFaults::default(), vec![spec]);
        let lat = SimDuration::from_millis(7);
        // Held traffic is released at the heal instant: latency was already
        // spent in flight (it is charged from the send, not from the heal).
        assert_eq!(
            l.route(NodeId(0), NodeId(1), SimTime::from_secs(15), lat),
            Routed::Deliver(heal)
        );
        // A send whose flight straddles the heal is unaffected by the cut.
        let near = SimTime::from_micros(heal.as_micros() - 5_000);
        assert_eq!(
            l.route(NodeId(0), NodeId(1), near, lat),
            Routed::Deliver(near + lat)
        );
    }

    #[test]
    fn crash_prunes_draw_counters() {
        let mut l = layer(
            LinkFaults {
                loss_rate: 0.5,
                ..Default::default()
            },
            Vec::new(),
        );
        let lat = SimDuration::from_millis(1);
        let _ = l.route(NodeId(0), NodeId(1), SimTime::ZERO, lat);
        let _ = l.route(NodeId(1), NodeId(0), SimTime::ZERO, lat);
        let _ = l.route(NodeId(2), NodeId(3), SimTime::ZERO, lat);
        assert_eq!(l.tracked_counters(), 3);
        l.prune(NodeId(1));
        assert_eq!(l.tracked_counters(), 1, "both directions involving 1 gone");
    }

    #[test]
    #[should_panic(expected = "heal after it starts")]
    fn inverted_partition_window_is_rejected() {
        PartitionSpec::new(
            vec![NodeId(0)],
            SimTime::from_secs(2),
            SimTime::from_secs(1),
            PartitionMode::Drop,
        );
    }
}
