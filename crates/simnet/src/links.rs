//! Dense, index-addressed per-node link state.
//!
//! The simulator used to keep its connection table in one global
//! `BTreeSet<(NodeId, NodeId)>` (scanned end-to-end on every crash) and its
//! FIFO link clocks in one `HashMap` per sender (hashed on every send).
//! Both are replaced here by per-node sorted vectors addressed by the dense
//! `NodeId` index space:
//!
//! * [`Adjacency`] — per-owner sorted peer lists plus a reverse index
//!   (`incoming[peer]` = owners with an open connection *to* `peer`), so
//!   notifying the peers of a crashed node is O(degree · log degree) instead
//!   of O(total connections).
//! * [`PerLink`] — a generic map `(sender, dest) -> T` stored as one small
//!   sorted vector per sender plus the same reverse-index shape, so all
//!   state involving a crashed node can be dropped in O(degree · log
//!   degree), in place. The FIFO link clocks ([`LinkClocks`] =
//!   `PerLink<SimTime>`) and the fault layer's per-link draw counters
//!   (`PerLink<u64>`) are both instances.
//!
//! Iteration order over any of these structures is fully deterministic
//! (sorted by `NodeId`), matching the old `BTreeSet` order — required by the
//! determinism contract (`run_matrix` parallel ≡ sequential).

use crate::node::NodeId;
use crate::time::SimTime;

fn ensure_len<T: Default>(v: &mut Vec<T>, index: usize) {
    if v.len() <= index {
        v.resize_with(index + 1, T::default);
    }
}

/// Open connections as per-node sorted adjacency vectors with a reverse
/// index. A connection `(owner, peer)` means `owner` has declared an open
/// connection to `peer` and will receive `on_link_down(peer)` if `peer`
/// crashes.
#[derive(Debug, Default)]
pub(crate) struct Adjacency {
    /// `out[owner]` = peers `owner` has a connection to, sorted.
    out: Vec<Vec<NodeId>>,
    /// `incoming[peer]` = owners with a connection to `peer`, sorted.
    incoming: Vec<Vec<NodeId>>,
}

impl Adjacency {
    /// Inserts the directed connection `(owner, peer)`; no-op if present.
    pub fn insert(&mut self, owner: NodeId, peer: NodeId) {
        ensure_len(&mut self.out, owner.index());
        let list = &mut self.out[owner.index()];
        if let Err(pos) = list.binary_search(&peer) {
            list.insert(pos, peer);
            ensure_len(&mut self.incoming, peer.index());
            let rev = &mut self.incoming[peer.index()];
            if let Err(pos) = rev.binary_search(&owner) {
                rev.insert(pos, owner);
            }
        }
    }

    /// Removes the directed connection `(owner, peer)`; no-op if absent.
    pub fn remove(&mut self, owner: NodeId, peer: NodeId) {
        if let Some(list) = self.out.get_mut(owner.index()) {
            if let Ok(pos) = list.binary_search(&peer) {
                list.remove(pos);
                let rev = &mut self.incoming[peer.index()];
                if let Ok(pos) = rev.binary_search(&owner) {
                    rev.remove(pos);
                }
            }
        }
    }

    /// True if the directed connection `(owner, peer)` is open.
    pub fn contains(&self, owner: NodeId, peer: NodeId) -> bool {
        self.out
            .get(owner.index())
            .is_some_and(|list| list.binary_search(&peer).is_ok())
    }

    /// Owners with an open connection to `node`, sorted ascending — exactly
    /// the peers to notify when `node` crashes.
    pub fn incoming_of(&self, node: NodeId) -> &[NodeId] {
        self.incoming
            .get(node.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Drops every connection owned by `node` (its outgoing edges), in
    /// O(degree · log degree). Incoming edges `(owner, node)` stay open
    /// until each owner's link-down notification is processed, mirroring
    /// connection-level failure detection. Storage is cleared in place.
    pub fn clear_outgoing(&mut self, node: NodeId) {
        let Some(list) = self.out.get_mut(node.index()) else {
            return;
        };
        for &peer in list.iter() {
            let rev = &mut self.incoming[peer.index()];
            if let Ok(pos) = rev.binary_search(&node) {
                rev.remove(pos);
            }
        }
        list.clear();
    }

    /// Total number of open directed connections (diagnostic).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Bytes of memory the adjacency vectors occupy (capacities, not
    /// lengths — this is the footprint, not the live entry count).
    pub fn approx_bytes(&self) -> usize {
        let id = std::mem::size_of::<NodeId>();
        let vec = std::mem::size_of::<Vec<NodeId>>();
        std::mem::size_of::<Self>()
            + (self.out.capacity() + self.incoming.capacity()) * vec
            + self
                .out
                .iter()
                .chain(self.incoming.iter())
                .map(|v| v.capacity() * id)
                .sum::<usize>()
    }
}

/// A generic per-directed-link map `(sender, dest) -> T`.
///
/// Stored as one small sorted vector per sender plus a reverse index
/// (`senders_of[dest]` = senders holding an entry towards `dest`, the same
/// shape as [`Adjacency::incoming`]), so that all state involving a node —
/// in either direction — can be dropped in O(degree · log degree) when it
/// crashes. Dropped *in place*, too: the vectors are cleared, not replaced,
/// so a crash allocates nothing. Typical degrees are single-digit, so the
/// binary searches beat SipHash-ing a `HashMap` key.
#[derive(Debug)]
pub(crate) struct PerLink<T> {
    by_sender: Vec<Vec<(NodeId, T)>>,
    /// `senders_of[dest]` = senders with an entry towards `dest`, sorted.
    senders_of: Vec<Vec<NodeId>>,
}

// Derived `Default` would needlessly require `T: Default`.
impl<T> Default for PerLink<T> {
    fn default() -> Self {
        PerLink {
            by_sender: Vec::new(),
            senders_of: Vec::new(),
        }
    }
}

impl<T: Default> PerLink<T> {
    /// Mutable access to the entry of the directed link `sender -> dest`,
    /// initialised to `T::default()`.
    pub fn entry(&mut self, sender: NodeId, dest: NodeId) -> &mut T {
        ensure_len(&mut self.by_sender, sender.index());
        let entries = &mut self.by_sender[sender.index()];
        let pos = match entries.binary_search_by_key(&dest, |(d, _)| *d) {
            Ok(pos) => pos,
            Err(pos) => {
                entries.insert(pos, (dest, T::default()));
                ensure_len(&mut self.senders_of, dest.index());
                let rev = &mut self.senders_of[dest.index()];
                if let Err(rpos) = rev.binary_search(&sender) {
                    rev.insert(rpos, sender);
                }
                pos
            }
        };
        &mut entries[pos].1
    }

    /// Drops every entry involving `node`, in either direction. Called when
    /// `node` crashes: it will never send again, and per-link state towards
    /// a dead destination no longer matters. The reverse index yields the
    /// senders tracking `node` directly, so the whole prune is
    /// O(degree · log degree) — no scan over other nodes' state — and
    /// clears in place, with no allocation.
    pub fn prune(&mut self, node: NodeId) {
        if let Some(own) = self.by_sender.get_mut(node.index()) {
            for (dest, _) in own.iter() {
                let rev = &mut self.senders_of[dest.index()];
                if let Ok(pos) = rev.binary_search(&node) {
                    rev.remove(pos);
                }
            }
            own.clear();
        }
        if let Some(rev) = self.senders_of.get_mut(node.index()) {
            for &sender in rev.iter() {
                let entries = &mut self.by_sender[sender.index()];
                if let Ok(pos) = entries.binary_search_by_key(&node, |(d, _)| *d) {
                    entries.remove(pos);
                }
            }
            rev.clear();
        }
    }
}

impl<T> PerLink<T> {
    /// Number of directed links currently tracked (test/diagnostic hook).
    pub fn tracked_links(&self) -> usize {
        self.by_sender.iter().map(Vec::len).sum()
    }

    /// Capacity of `sender`'s entry vector (test hook: asserts that crash
    /// pruning clears in place rather than reallocating).
    pub fn slot_capacity(&self, sender: NodeId) -> usize {
        self.by_sender
            .get(sender.index())
            .map(Vec::capacity)
            .unwrap_or(0)
    }

    /// Bytes of memory the per-link vectors occupy (capacities, not
    /// lengths).
    pub fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(NodeId, T)>();
        let id = std::mem::size_of::<NodeId>();
        let vec = std::mem::size_of::<Vec<NodeId>>();
        std::mem::size_of::<Self>()
            + (self.by_sender.capacity() + self.senders_of.capacity()) * vec
            + self
                .by_sender
                .iter()
                .map(|v| v.capacity() * entry)
                .sum::<usize>()
            + self
                .senders_of
                .iter()
                .map(|v| v.capacity() * id)
                .sum::<usize>()
    }

    /// Every `(sender, dest, value)` triple, in `(sender, dest)` order.
    /// Diagnostic hook for the online invariant checkers.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, &T)> + '_ {
        self.by_sender
            .iter()
            .enumerate()
            .flat_map(|(s, entries)| entries.iter().map(move |(d, v)| (NodeId(s as u32), *d, v)))
    }
}

/// Per-sender FIFO clocks towards every destination the sender has
/// messaged: the time the last message on the directed link is scheduled to
/// arrive.
pub(crate) type LinkClocks = PerLink<SimTime>;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn adjacency_insert_remove_contains() {
        let mut adj = Adjacency::default();
        adj.insert(NodeId(1), NodeId(2));
        adj.insert(NodeId(1), NodeId(2)); // duplicate is a no-op
        adj.insert(NodeId(3), NodeId(2));
        adj.insert(NodeId(1), NodeId(0));
        assert!(adj.contains(NodeId(1), NodeId(2)));
        assert!(!adj.contains(NodeId(2), NodeId(1)));
        assert_eq!(adj.len(), 3);
        assert_eq!(adj.incoming_of(NodeId(2)), &[NodeId(1), NodeId(3)]);
        adj.remove(NodeId(1), NodeId(2));
        adj.remove(NodeId(1), NodeId(2)); // absent is a no-op
        assert!(!adj.contains(NodeId(1), NodeId(2)));
        assert_eq!(adj.incoming_of(NodeId(2)), &[NodeId(3)]);
    }

    #[test]
    fn adjacency_clear_outgoing_updates_reverse_index() {
        let mut adj = Adjacency::default();
        adj.insert(NodeId(0), NodeId(1));
        adj.insert(NodeId(0), NodeId(2));
        adj.insert(NodeId(3), NodeId(1));
        adj.clear_outgoing(NodeId(0));
        assert_eq!(adj.len(), 1);
        assert_eq!(adj.incoming_of(NodeId(1)), &[NodeId(3)]);
        assert_eq!(adj.incoming_of(NodeId(2)), &[] as &[NodeId]);
        // Clearing an owner that never connected is fine.
        adj.clear_outgoing(NodeId(42));
    }

    #[test]
    fn link_clocks_entry_and_prune_in_place() {
        let mut clocks = LinkClocks::default();
        *clocks.entry(NodeId(0), NodeId(1)) = SimTime::from_millis(5);
        *clocks.entry(NodeId(0), NodeId(2)) = SimTime::from_millis(7);
        *clocks.entry(NodeId(1), NodeId(0)) = SimTime::from_millis(9);
        *clocks.entry(NodeId(2), NodeId(1)) = SimTime::from_millis(11);
        assert_eq!(clocks.tracked_links(), 4);
        assert_eq!(*clocks.entry(NodeId(0), NodeId(1)), SimTime::from_millis(5));
        let cap_before = clocks.slot_capacity(NodeId(0));
        assert!(cap_before >= 2);
        clocks.prune(NodeId(0));
        // Everything involving node 0 is gone; the bystander clock 2 -> 1
        // is untouched (the reverse index names exactly the senders that
        // tracked the crashed node).
        assert_eq!(clocks.tracked_links(), 1);
        assert_eq!(
            *clocks.entry(NodeId(2), NodeId(1)),
            SimTime::from_millis(11)
        );
        assert_eq!(
            clocks.slot_capacity(NodeId(0)),
            cap_before,
            "prune clears in place, it does not reallocate"
        );
        // Pruning the remaining sender (exercises the forward direction of
        // the reverse index) empties the table.
        clocks.prune(NodeId(2));
        assert_eq!(clocks.tracked_links(), 0);
    }

    #[test]
    fn entries_iterate_in_link_order() {
        let mut map: PerLink<u64> = PerLink::default();
        *map.entry(NodeId(2), NodeId(0)) = 20;
        *map.entry(NodeId(0), NodeId(3)) = 3;
        *map.entry(NodeId(0), NodeId(1)) = 1;
        let triples: Vec<(u32, u32, u64)> = map.entries().map(|(s, d, v)| (s.0, d.0, *v)).collect();
        assert_eq!(triples, vec![(0, 1, 1), (0, 3, 3), (2, 0, 20)]);
    }

    /// Checks every structural invariant tying the forward vectors to the
    /// reverse index of an [`Adjacency`]: sortedness, no duplicates, and
    /// exact agreement in both directions.
    fn assert_adjacency_consistent(adj: &Adjacency) {
        for (owner, list) in adj.out.iter().enumerate() {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "out sorted, unique");
            for peer in list {
                let rev = adj.incoming.get(peer.index()).expect("reverse slot");
                assert!(
                    rev.binary_search(&NodeId(owner as u32)).is_ok(),
                    "edge ({owner}, {peer}) missing from the reverse index"
                );
            }
        }
        let mut reverse_edges = 0usize;
        for (peer, rev) in adj.incoming.iter().enumerate() {
            assert!(rev.windows(2).all(|w| w[0] < w[1]), "incoming sorted");
            for owner in rev {
                assert!(
                    adj.contains(*owner, NodeId(peer as u32)),
                    "reverse edge ({owner}, {peer}) has no forward edge"
                );
                reverse_edges += 1;
            }
        }
        assert_eq!(reverse_edges, adj.len(), "edge counts agree");
    }

    /// Same for a [`PerLink`] map: every `(sender, dest)` entry appears in
    /// the reverse index and vice versa.
    fn assert_per_link_consistent<T>(map: &PerLink<T>) {
        for (sender, entries) in map.by_sender.iter().enumerate() {
            assert!(
                entries.windows(2).all(|w| w[0].0 < w[1].0),
                "sender slots sorted, unique"
            );
            for (dest, _) in entries {
                let rev = map.senders_of.get(dest.index()).expect("reverse slot");
                assert!(
                    rev.binary_search(&NodeId(sender as u32)).is_ok(),
                    "link ({sender}, {dest}) missing from the reverse index"
                );
            }
        }
        let mut reverse_links = 0usize;
        for (dest, rev) in map.senders_of.iter().enumerate() {
            assert!(rev.windows(2).all(|w| w[0] < w[1]), "senders_of sorted");
            for sender in rev {
                assert!(
                    map.by_sender[sender.index()]
                        .binary_search_by_key(&NodeId(dest as u32), |(d, _)| *d)
                        .is_ok(),
                    "reverse link ({sender}, {dest}) has no forward entry"
                );
                reverse_links += 1;
            }
        }
        assert_eq!(reverse_links, map.tracked_links(), "link counts agree");
    }

    /// One scripted operation over the link structures. Node identifiers are
    /// drawn from a window that grows with `join`s, like the simulator's
    /// dense id space.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Connect(u32, u32),
        Close(u32, u32),
        Touch(u32, u32),
        Crash(u32),
        Join,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u32..32, 0u32..32).prop_map(|(a, b)| Op::Connect(a, b)),
            1 => (0u32..32, 0u32..32).prop_map(|(a, b)| Op::Close(a, b)),
            3 => (0u32..32, 0u32..32).prop_map(|(a, b)| Op::Touch(a, b)),
            1 => (0u32..32).prop_map(Op::Crash),
            1 => Just(Op::Join),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// The reverse indices of [`Adjacency`] and [`PerLink`] stay exactly
        /// consistent with the forward vectors under arbitrary interleavings
        /// of connects, closes, sends (clock touches), crashes and joins —
        /// and both structures agree with a naive model.
        #[test]
        fn reverse_indices_stay_consistent(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut adj = Adjacency::default();
            let mut clocks: PerLink<u64> = PerLink::default();
            let mut model_edges: BTreeSet<(u32, u32)> = BTreeSet::new();
            let mut model_links: BTreeSet<(u32, u32)> = BTreeSet::new();
            let mut population = 8u32;
            for op in ops {
                match op {
                    Op::Connect(a, b) => {
                        let (a, b) = (a % population, b % population);
                        adj.insert(NodeId(a), NodeId(b));
                        model_edges.insert((a, b));
                    }
                    Op::Close(a, b) => {
                        let (a, b) = (a % population, b % population);
                        adj.remove(NodeId(a), NodeId(b));
                        model_edges.remove(&(a, b));
                    }
                    Op::Touch(a, b) => {
                        let (a, b) = (a % population, b % population);
                        *clocks.entry(NodeId(a), NodeId(b)) += 1;
                        model_links.insert((a, b));
                    }
                    Op::Crash(n) => {
                        let n = n % population;
                        // Exactly what `process_crash` does to this state.
                        adj.clear_outgoing(NodeId(n));
                        clocks.prune(NodeId(n));
                        model_edges.retain(|&(a, _)| a != n);
                        model_links.retain(|&(a, b)| a != n && b != n);
                    }
                    Op::Join => population += 1,
                }
                assert_adjacency_consistent(&adj);
                assert_per_link_consistent(&clocks);
                // Forward state matches the naive model exactly.
                let edges: BTreeSet<(u32, u32)> = adj
                    .out
                    .iter()
                    .enumerate()
                    .flat_map(|(o, l)| l.iter().map(move |p| (o as u32, p.0)))
                    .collect();
                prop_assert_eq!(&edges, &model_edges);
                let links: BTreeSet<(u32, u32)> =
                    clocks.entries().map(|(s, d, _)| (s.0, d.0)).collect();
                prop_assert_eq!(&links, &model_links);
            }
        }
    }
}
