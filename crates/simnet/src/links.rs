//! Dense, index-addressed per-node link state.
//!
//! The simulator used to keep its connection table in one global
//! `BTreeSet<(NodeId, NodeId)>` (scanned end-to-end on every crash) and its
//! FIFO link clocks in one `HashMap` per sender (hashed on every send).
//! Both are replaced here by per-node sorted vectors addressed by the dense
//! `NodeId` index space:
//!
//! * [`Adjacency`] — per-owner sorted peer lists plus a reverse index
//!   (`incoming[peer]` = owners with an open connection *to* `peer`), so
//!   notifying the peers of a crashed node is O(degree · log degree) instead
//!   of O(total connections).
//! * [`LinkClocks`] — per-sender sorted `(dest, clock)` vectors; typical
//!   degrees are single-digit, so a binary search beats SipHash-ing a
//!   `HashMap` key, and crash pruning clears vectors in place (capacity is
//!   retained — no allocation per crash).
//!
//! Iteration order over any of these structures is fully deterministic
//! (sorted by `NodeId`), matching the old `BTreeSet` order — required by the
//! determinism contract (`run_matrix` parallel ≡ sequential).

use crate::node::NodeId;
use crate::time::SimTime;

fn ensure_len<T: Default>(v: &mut Vec<T>, index: usize) {
    if v.len() <= index {
        v.resize_with(index + 1, T::default);
    }
}

/// Open connections as per-node sorted adjacency vectors with a reverse
/// index. A connection `(owner, peer)` means `owner` has declared an open
/// connection to `peer` and will receive `on_link_down(peer)` if `peer`
/// crashes.
#[derive(Debug, Default)]
pub(crate) struct Adjacency {
    /// `out[owner]` = peers `owner` has a connection to, sorted.
    out: Vec<Vec<NodeId>>,
    /// `incoming[peer]` = owners with a connection to `peer`, sorted.
    incoming: Vec<Vec<NodeId>>,
}

impl Adjacency {
    /// Inserts the directed connection `(owner, peer)`; no-op if present.
    pub fn insert(&mut self, owner: NodeId, peer: NodeId) {
        ensure_len(&mut self.out, owner.index());
        let list = &mut self.out[owner.index()];
        if let Err(pos) = list.binary_search(&peer) {
            list.insert(pos, peer);
            ensure_len(&mut self.incoming, peer.index());
            let rev = &mut self.incoming[peer.index()];
            if let Err(pos) = rev.binary_search(&owner) {
                rev.insert(pos, owner);
            }
        }
    }

    /// Removes the directed connection `(owner, peer)`; no-op if absent.
    pub fn remove(&mut self, owner: NodeId, peer: NodeId) {
        if let Some(list) = self.out.get_mut(owner.index()) {
            if let Ok(pos) = list.binary_search(&peer) {
                list.remove(pos);
                let rev = &mut self.incoming[peer.index()];
                if let Ok(pos) = rev.binary_search(&owner) {
                    rev.remove(pos);
                }
            }
        }
    }

    /// True if the directed connection `(owner, peer)` is open.
    pub fn contains(&self, owner: NodeId, peer: NodeId) -> bool {
        self.out
            .get(owner.index())
            .is_some_and(|list| list.binary_search(&peer).is_ok())
    }

    /// Owners with an open connection to `node`, sorted ascending — exactly
    /// the peers to notify when `node` crashes.
    pub fn incoming_of(&self, node: NodeId) -> &[NodeId] {
        self.incoming
            .get(node.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Drops every connection owned by `node` (its outgoing edges), in
    /// O(degree · log degree). Incoming edges `(owner, node)` stay open
    /// until each owner's link-down notification is processed, mirroring
    /// connection-level failure detection. Storage is cleared in place.
    pub fn clear_outgoing(&mut self, node: NodeId) {
        let Some(list) = self.out.get_mut(node.index()) else {
            return;
        };
        for &peer in list.iter() {
            let rev = &mut self.incoming[peer.index()];
            if let Ok(pos) = rev.binary_search(&node) {
                rev.remove(pos);
            }
        }
        list.clear();
    }

    /// Total number of open directed connections (diagnostic).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }
}

/// Per-sender FIFO clocks towards every destination the sender has messaged.
///
/// Semantically a map `(sender, dest) -> last scheduled arrival`, stored as
/// one small sorted vector per sender plus a reverse index
/// (`senders_of[dest]` = senders holding a clock towards `dest`, the same
/// shape as [`Adjacency::incoming`]), so that all state involving a node —
/// in either direction — can be dropped in O(degree · log degree) when it
/// crashes. Dropped *in place*, too: the vectors are cleared, not replaced,
/// so a crash allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct LinkClocks {
    by_sender: Vec<Vec<(NodeId, SimTime)>>,
    /// `senders_of[dest]` = senders with a clock towards `dest`, sorted.
    senders_of: Vec<Vec<NodeId>>,
}

impl LinkClocks {
    /// Mutable access to the clock of the directed link `sender -> dest`,
    /// initialised to [`SimTime::ZERO`].
    pub fn entry(&mut self, sender: NodeId, dest: NodeId) -> &mut SimTime {
        ensure_len(&mut self.by_sender, sender.index());
        let clocks = &mut self.by_sender[sender.index()];
        let pos = match clocks.binary_search_by_key(&dest, |&(d, _)| d) {
            Ok(pos) => pos,
            Err(pos) => {
                clocks.insert(pos, (dest, SimTime::ZERO));
                ensure_len(&mut self.senders_of, dest.index());
                let rev = &mut self.senders_of[dest.index()];
                if let Err(rpos) = rev.binary_search(&sender) {
                    rev.insert(rpos, sender);
                }
                pos
            }
        };
        &mut clocks[pos].1
    }

    /// Drops every clock involving `node`, in either direction. Called when
    /// `node` crashes: it will never send again, and in-flight FIFO ordering
    /// towards a dead destination no longer matters (deliveries to it are
    /// dropped). The reverse index yields the senders tracking `node`
    /// directly, so the whole prune is O(degree · log degree) — no scan
    /// over other nodes' state — and clears in place, with no allocation.
    pub fn prune(&mut self, node: NodeId) {
        if let Some(own) = self.by_sender.get_mut(node.index()) {
            for &(dest, _) in own.iter() {
                let rev = &mut self.senders_of[dest.index()];
                if let Ok(pos) = rev.binary_search(&node) {
                    rev.remove(pos);
                }
            }
            own.clear();
        }
        if let Some(rev) = self.senders_of.get_mut(node.index()) {
            for &sender in rev.iter() {
                let clocks = &mut self.by_sender[sender.index()];
                if let Ok(pos) = clocks.binary_search_by_key(&node, |&(d, _)| d) {
                    clocks.remove(pos);
                }
            }
            rev.clear();
        }
    }

    /// Number of directed links currently tracked (test/diagnostic hook).
    pub fn tracked_links(&self) -> usize {
        self.by_sender.iter().map(Vec::len).sum()
    }

    /// Capacity of `sender`'s clock vector (test hook: asserts that crash
    /// pruning clears in place rather than reallocating).
    pub fn slot_capacity(&self, sender: NodeId) -> usize {
        self.by_sender
            .get(sender.index())
            .map(Vec::capacity)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_insert_remove_contains() {
        let mut adj = Adjacency::default();
        adj.insert(NodeId(1), NodeId(2));
        adj.insert(NodeId(1), NodeId(2)); // duplicate is a no-op
        adj.insert(NodeId(3), NodeId(2));
        adj.insert(NodeId(1), NodeId(0));
        assert!(adj.contains(NodeId(1), NodeId(2)));
        assert!(!adj.contains(NodeId(2), NodeId(1)));
        assert_eq!(adj.len(), 3);
        assert_eq!(adj.incoming_of(NodeId(2)), &[NodeId(1), NodeId(3)]);
        adj.remove(NodeId(1), NodeId(2));
        adj.remove(NodeId(1), NodeId(2)); // absent is a no-op
        assert!(!adj.contains(NodeId(1), NodeId(2)));
        assert_eq!(adj.incoming_of(NodeId(2)), &[NodeId(3)]);
    }

    #[test]
    fn adjacency_clear_outgoing_updates_reverse_index() {
        let mut adj = Adjacency::default();
        adj.insert(NodeId(0), NodeId(1));
        adj.insert(NodeId(0), NodeId(2));
        adj.insert(NodeId(3), NodeId(1));
        adj.clear_outgoing(NodeId(0));
        assert_eq!(adj.len(), 1);
        assert_eq!(adj.incoming_of(NodeId(1)), &[NodeId(3)]);
        assert_eq!(adj.incoming_of(NodeId(2)), &[] as &[NodeId]);
        // Clearing an owner that never connected is fine.
        adj.clear_outgoing(NodeId(42));
    }

    #[test]
    fn link_clocks_entry_and_prune_in_place() {
        let mut clocks = LinkClocks::default();
        *clocks.entry(NodeId(0), NodeId(1)) = SimTime::from_millis(5);
        *clocks.entry(NodeId(0), NodeId(2)) = SimTime::from_millis(7);
        *clocks.entry(NodeId(1), NodeId(0)) = SimTime::from_millis(9);
        *clocks.entry(NodeId(2), NodeId(1)) = SimTime::from_millis(11);
        assert_eq!(clocks.tracked_links(), 4);
        assert_eq!(*clocks.entry(NodeId(0), NodeId(1)), SimTime::from_millis(5));
        let cap_before = clocks.slot_capacity(NodeId(0));
        assert!(cap_before >= 2);
        clocks.prune(NodeId(0));
        // Everything involving node 0 is gone; the bystander clock 2 -> 1
        // is untouched (the reverse index names exactly the senders that
        // tracked the crashed node).
        assert_eq!(clocks.tracked_links(), 1);
        assert_eq!(
            *clocks.entry(NodeId(2), NodeId(1)),
            SimTime::from_millis(11)
        );
        assert_eq!(
            clocks.slot_capacity(NodeId(0)),
            cap_before,
            "prune clears in place, it does not reallocate"
        );
        // Pruning the remaining sender (exercises the forward direction of
        // the reverse index) empties the table.
        clocks.prune(NodeId(2));
        assert_eq!(clocks.tracked_links(), 0);
    }
}
