//! # brisa-simnet — deterministic discrete-event network simulator
//!
//! This crate is the substrate on which the BRISA reproduction runs. The
//! paper evaluates its prototype on a physical cluster and on PlanetLab; we
//! substitute both with a deterministic discrete-event simulator that
//! preserves the protocol-level behaviour the evaluation measures:
//!
//! * reliable, FIFO, connection-oriented links with configurable latency
//!   distributions ([`latency::ClusterLatency`], [`latency::PlanetLabLatency`]);
//! * connection-level failure detection with a configurable delay,
//!   mirroring the prototype's TCP keep-alive heart-beating;
//! * per-node upload/download byte accounting with per-second buckets
//!   ([`bandwidth::BandwidthMeter`]);
//! * fail-stop crashes and delayed joins, driving churn experiments;
//! * deterministic fault injection — per-link message loss, latency
//!   degradation and timed network partitions ([`faults`]);
//! * full determinism for a given seed.
//!
//! Protocols implement the sans-IO [`Protocol`] trait and interact with the
//! world exclusively through the [`Context`] handle.
//!
//! ```
//! use brisa_simnet::{Network, NetworkConfig, Protocol, Context, NodeId, TimerTag,
//!                    SimTime, SimDuration, WireSize, latency::FixedLatency};
//!
//! #[derive(Clone)]
//! struct Hello;
//! impl WireSize for Hello { fn wire_size(&self) -> usize { 5 } }
//!
//! struct Greeter { peer: Option<NodeId>, greeted: bool }
//! impl Protocol for Greeter {
//!     type Message = Hello;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Hello>) {
//!         if let Some(p) = self.peer { ctx.send(p, Hello); }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Hello>, _from: NodeId, _m: Hello) {
//!         self.greeted = true;
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, Hello>, _tag: TimerTag) {}
//! }
//!
//! let mut net = Network::new(NetworkConfig::default(),
//!                            Box::new(FixedLatency::new(SimDuration::from_millis(1))));
//! let a = net.add_node(|_| Greeter { peer: None, greeted: false });
//! let _b = net.add_node(move |_| Greeter { peer: Some(a), greeted: false });
//! net.run_until(SimTime::from_secs(1));
//! assert!(net.node(a).unwrap().greeted);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bandwidth;
mod event;
pub mod faults;
pub mod latency;
mod links;
mod network;
mod node;
mod protocol;
pub mod sched;
pub mod seed;
mod shard;
mod time;

pub use bandwidth::{BandwidthMeter, Direction, MeterMode, NodeBandwidth};
pub use event::TimerTag;
pub use faults::{FaultConfig, FaultPrf, LinkFaults, PartitionMode, PartitionSpec};
pub use latency::LatencyModel;
pub use network::{event_record_size, Footprint, NetStats, Network, NetworkConfig};
pub use node::NodeId;
pub use protocol::{Command, Context, Protocol, WireSize};
pub use sched::{SchedulerKind, TraceOp};
pub use shard::ShardedNetwork;
pub use time::{SimDuration, SimTime, MICROS_PER_MILLI, MICROS_PER_SEC};
