//! Link latency models.
//!
//! The paper evaluates BRISA on two testbeds: a 15-machine switched-Gigabit
//! cluster and a PlanetLab slice. This module provides the corresponding
//! synthetic latency models used by the simulator:
//!
//! * [`ClusterLatency`] — low, narrowly distributed latencies typical of a
//!   switched LAN.
//! * [`PlanetLabLatency`] — heavy-tailed, asymmetric per-pair wide-area
//!   latencies with per-message jitter.
//! * [`FixedLatency`] — a constant latency, useful for unit tests where
//!   deterministic timing simplifies assertions.
//!
//! Per-pair base latencies for the PlanetLab model are derived from a hash of
//! `(seed, src, dst)` so no `O(N^2)` matrix needs to be materialised and the
//! model remains deterministic even when nodes join dynamically.

use crate::node::NodeId;
use crate::time::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;

/// A model producing the one-way latency of a message from `src` to `dst`.
pub trait LatencyModel: Send {
    /// Samples the latency for one message transmission.
    fn sample(&self, src: NodeId, dst: NodeId, rng: &mut SmallRng) -> SimDuration;

    /// A deterministic "typical" latency between the pair, used by
    /// experiments that need a point-to-point reference (e.g. the stretch
    /// baseline of Figure 9). Defaults to a fresh sample.
    fn typical(&self, src: NodeId, dst: NodeId, rng: &mut SmallRng) -> SimDuration {
        self.sample(src, dst, rng)
    }

    /// A hard lower bound on [`Self::sample`] over every pair: no sampled
    /// latency is ever smaller. The sharded driver sizes its epoch window
    /// from this bound (conservative parallel DES lookahead), so a model
    /// that cannot promise one must return [`SimDuration::ZERO`] — which
    /// restricts it to the sequential driver.
    fn min_latency(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Constant latency between every pair of nodes.
#[derive(Debug, Clone)]
pub struct FixedLatency {
    latency: SimDuration,
}

impl FixedLatency {
    /// Creates a model with the given constant latency.
    pub fn new(latency: SimDuration) -> Self {
        FixedLatency { latency }
    }
}

impl LatencyModel for FixedLatency {
    fn sample(&self, _src: NodeId, _dst: NodeId, _rng: &mut SmallRng) -> SimDuration {
        self.latency
    }

    fn typical(&self, _src: NodeId, _dst: NodeId, _rng: &mut SmallRng) -> SimDuration {
        self.latency
    }

    fn min_latency(&self) -> SimDuration {
        self.latency
    }
}

/// Switched-LAN latency: uniformly distributed between `min` and `max`.
///
/// The defaults (100–400 µs) model the 1 Gbps switched network of the
/// paper's cluster testbed, including the scheduling noise caused by running
/// many logical nodes per physical machine.
#[derive(Debug, Clone)]
pub struct ClusterLatency {
    min: SimDuration,
    max: SimDuration,
}

impl ClusterLatency {
    /// Creates a model with the given bounds.
    pub fn new(min: SimDuration, max: SimDuration) -> Self {
        assert!(min <= max, "min latency must not exceed max latency");
        ClusterLatency { min, max }
    }
}

impl Default for ClusterLatency {
    fn default() -> Self {
        ClusterLatency::new(SimDuration::from_micros(100), SimDuration::from_micros(400))
    }
}

impl LatencyModel for ClusterLatency {
    fn sample(&self, _src: NodeId, _dst: NodeId, rng: &mut SmallRng) -> SimDuration {
        let lo = self.min.as_micros();
        let hi = self.max.as_micros();
        SimDuration::from_micros(rng.gen_range(lo..=hi))
    }

    fn typical(&self, _src: NodeId, _dst: NodeId, _rng: &mut SmallRng) -> SimDuration {
        SimDuration::from_micros((self.min.as_micros() + self.max.as_micros()) / 2)
    }

    fn min_latency(&self) -> SimDuration {
        self.min
    }
}

/// Wide-area latency in the style of PlanetLab.
///
/// Each ordered pair `(src, dst)` gets a deterministic base latency drawn
/// from a log-normal-like distribution (median `median_ms`, heavy upper
/// tail). The latency is asymmetric: `(a, b)` and `(b, a)` have independent
/// bases, reflecting the asymmetries that the paper notes "deter direct
/// communication between some nodes". Each message additionally experiences
/// multiplicative jitter of up to `jitter_frac`.
#[derive(Debug, Clone)]
pub struct PlanetLabLatency {
    seed: u64,
    median_ms: f64,
    sigma: f64,
    jitter_frac: f64,
    min: SimDuration,
}

impl PlanetLabLatency {
    /// Creates a model.
    ///
    /// * `seed` — deterministic base-latency derivation.
    /// * `median_ms` — median one-way pair latency in milliseconds.
    /// * `sigma` — log-space standard deviation (0.5–0.9 gives realistic
    ///   PlanetLab-like tails).
    /// * `jitter_frac` — per-message multiplicative jitter (e.g. 0.2 = ±20%).
    pub fn new(seed: u64, median_ms: f64, sigma: f64, jitter_frac: f64) -> Self {
        PlanetLabLatency {
            seed,
            median_ms,
            sigma,
            jitter_frac,
            min: SimDuration::from_micros(500),
        }
    }

    /// Deterministic base latency for the ordered pair.
    fn base_ms(&self, src: NodeId, dst: NodeId) -> f64 {
        // SplitMix64 over (seed, src, dst) gives a uniform u64; convert to two
        // gaussians via Box-Muller to sample the log-normal deterministically.
        let mut x = self
            .seed
            .wrapping_mul(crate::seed::GOLDEN_GAMMA)
            .wrapping_add((src.0 as u64) << 32 | dst.0 as u64);
        let mut next = || {
            x = x.wrapping_add(crate::seed::GOLDEN_GAMMA);
            crate::seed::mix64(x)
        };
        let u1 = (next() >> 11) as f64 / (1u64 << 53) as f64;
        let u2 = (next() >> 11) as f64 / (1u64 << 53) as f64;
        let u1 = u1.max(1e-12);
        let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.median_ms * (self.sigma * gauss).exp()
    }
}

impl Default for PlanetLabLatency {
    fn default() -> Self {
        // Median one-way latency of ~40 ms with a heavy tail reaching several
        // hundred ms matches published PlanetLab RTT surveys.
        PlanetLabLatency::new(0xB215A, 40.0, 0.7, 0.2)
    }
}

impl LatencyModel for PlanetLabLatency {
    fn sample(&self, src: NodeId, dst: NodeId, rng: &mut SmallRng) -> SimDuration {
        let base = self.base_ms(src, dst);
        let jitter = 1.0 + rng.gen_range(-self.jitter_frac..=self.jitter_frac);
        let d = SimDuration::from_millis_f64(base * jitter);
        d.max(self.min)
    }

    fn typical(&self, src: NodeId, dst: NodeId, _rng: &mut SmallRng) -> SimDuration {
        SimDuration::from_millis_f64(self.base_ms(src, dst)).max(self.min)
    }

    fn min_latency(&self) -> SimDuration {
        // `sample` floors every draw at `self.min`.
        self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn fixed_is_constant() {
        let m = FixedLatency::new(SimDuration::from_millis(3));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                m.sample(NodeId(0), NodeId(1), &mut r),
                SimDuration::from_millis(3)
            );
        }
    }

    #[test]
    fn cluster_within_bounds() {
        let m = ClusterLatency::default();
        let mut r = rng();
        for _ in 0..1000 {
            let s = m.sample(NodeId(0), NodeId(1), &mut r);
            assert!(s >= SimDuration::from_micros(100));
            assert!(s <= SimDuration::from_micros(400));
        }
        assert_eq!(
            m.typical(NodeId(0), NodeId(1), &mut r),
            SimDuration::from_micros(250)
        );
    }

    #[test]
    #[should_panic(expected = "min latency")]
    fn cluster_rejects_inverted_bounds() {
        ClusterLatency::new(SimDuration::from_millis(2), SimDuration::from_millis(1));
    }

    #[test]
    fn planetlab_is_asymmetric_and_deterministic() {
        let m = PlanetLabLatency::default();
        let mut r = rng();
        let ab = m.typical(NodeId(1), NodeId(2), &mut r);
        let ba = m.typical(NodeId(2), NodeId(1), &mut r);
        assert_ne!(ab, ba, "pair latencies should be asymmetric");
        // Deterministic: same pair gives the same base.
        assert_eq!(ab, m.typical(NodeId(1), NodeId(2), &mut r));
    }

    #[test]
    fn planetlab_has_heavy_tail_and_floor() {
        let m = PlanetLabLatency::default();
        let mut r = rng();
        let mut samples: Vec<f64> = Vec::new();
        for i in 0..500u32 {
            for j in 0..4u32 {
                if i != j {
                    samples.push(m.sample(NodeId(i), NodeId(j), &mut r).as_millis_f64());
                }
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let p99 = samples[(samples.len() as f64 * 0.99) as usize];
        assert!(median > 10.0 && median < 120.0, "median {median}");
        assert!(
            p99 > 2.0 * median,
            "tail should be heavy: p99={p99} median={median}"
        );
        assert!(samples.iter().all(|&s| s >= 0.5), "floor of 0.5ms enforced");
    }
}
