//! The protocol/simulator interface.
//!
//! Protocols are written in a *sans-IO* style: the simulator calls into the
//! protocol with events (start, message, timer, link-down) and the protocol
//! reacts by issuing commands through the [`Context`] (send a message, set a
//! timer, open or close a connection). No I/O, threads or global state is
//! involved, which keeps protocol implementations deterministic and unit
//! testable.

use crate::event::TimerTag;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use brisa_telemetry::Telemetry;
use rand::rngs::SmallRng;

/// Types that know their size on the wire.
///
/// The simulator charges this many bytes of upload to the sender and of
/// download to the receiver of each message. Protocol crates compute the
/// size from header fields plus payload, mirroring the accounting of the
/// paper's prototype.
pub trait WireSize {
    /// Size of the encoded message in bytes.
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

/// A protocol stack run by one simulated node.
pub trait Protocol: Sized {
    /// The single message type exchanged between nodes running this stack.
    type Message: Clone + WireSize;

    /// Called once when the node starts executing (joins the system).
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>);

    /// Called when a message from `from` is delivered to this node.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Message>,
        from: NodeId,
        msg: Self::Message,
    );

    /// Called when a timer previously set through [`Context::set_timer`]
    /// fires. Timers cannot be cancelled; a protocol that no longer cares
    /// about a timer simply ignores the callback.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Message>, tag: TimerTag);

    /// Called when connection-level failure detection reports that the
    /// connection to `peer` is broken (the peer crashed, or a connection
    /// attempt to a dead peer timed out).
    fn on_link_down(&mut self, ctx: &mut Context<'_, Self::Message>, peer: NodeId) {
        let _ = (ctx, peer);
    }

    /// Rough memory footprint of this protocol state in bytes, including
    /// owned heap storage. The default counts only the inline struct size;
    /// stacks with significant heap state (delivery ledgers, views,
    /// buffers) should override it. Summed across nodes by
    /// [`crate::Network::footprint`] as the bytes-per-node proxy of the
    /// scale benches.
    fn approx_state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Commands emitted by a protocol while handling an event.
///
/// Inside the simulator these are consumed by the event loop; they are also
/// public so *external* drivers (the live runtime in `brisa-runtime`) can
/// execute the same sans-IO protocols over real transports: build a
/// [`Context`] with [`Context::external`], run a callback, then drain the
/// command vector and translate each entry into socket writes and wall-clock
/// timers.
#[derive(Debug)]
pub enum Command<M> {
    /// Send `msg` to `to` over the (reliable, FIFO) link.
    Send {
        /// Destination node.
        to: NodeId,
        /// Message to deliver.
        msg: M,
    },
    /// Arm a one-shot timer firing after `delay`.
    SetTimer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Tag handed back to [`Protocol::on_timer`].
        tag: TimerTag,
    },
    /// Open a monitored connection to `peer` (failure detection).
    OpenConnection {
        /// The peer to monitor.
        peer: NodeId,
    },
    /// Close the monitored connection to `peer`.
    CloseConnection {
        /// The peer to stop monitoring.
        peer: NodeId,
    },
}

/// Execution context handed to a protocol callback.
///
/// All interaction with the outside world goes through this handle: the
/// current simulated time, the node's own identifier, a per-node
/// deterministic random number generator, and the command sink.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) id: NodeId,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) commands: &'a mut Vec<Command<M>>,
    pub(crate) telemetry: &'a Telemetry,
}

impl<'a, M> Context<'a, M> {
    /// Builds a context for an external driver.
    ///
    /// The simulator constructs contexts internally; this constructor is the
    /// seam that lets other executors — the wall-clock runtime of
    /// `brisa-runtime` — drive the same [`Protocol`] implementations. The
    /// driver supplies the current time (for the live runtime: microseconds
    /// of wall clock since the cluster epoch), the node's identity and RNG,
    /// and a command vector it drains after the callback returns.
    pub fn external(
        now: SimTime,
        id: NodeId,
        rng: &'a mut SmallRng,
        commands: &'a mut Vec<Command<M>>,
    ) -> Self {
        Self::external_with_telemetry(now, id, rng, commands, &brisa_telemetry::DISABLED)
    }

    /// [`Context::external`] with an explicit telemetry handle, so external
    /// drivers that carry an enabled registry (the live reactor) expose it to
    /// protocol callbacks. Telemetry is strictly out-of-band: the handle
    /// never influences protocol behaviour, only what gets recorded.
    pub fn external_with_telemetry(
        now: SimTime,
        id: NodeId,
        rng: &'a mut SmallRng,
        commands: &'a mut Vec<Command<M>>,
        telemetry: &'a Telemetry,
    ) -> Self {
        Context {
            now,
            id,
            rng,
            commands,
            telemetry,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Identifier of the node executing the callback.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// The run's telemetry handle (disabled unless the driver attached
    /// one). Protocols may clone it and resolve metric handles; they must
    /// never branch on it in a way that alters protocol behaviour.
    pub fn telemetry(&self) -> &Telemetry {
        self.telemetry
    }

    /// Sends `msg` to `to`. Delivery is reliable and FIFO per destination
    /// (unless the peer crashes before the message arrives, in which case it
    /// is silently dropped — exactly what a broken TCP connection does).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.commands.push(Command::Send { to, msg });
    }

    /// Arms a one-shot timer that fires after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) {
        self.commands.push(Command::SetTimer { delay, tag });
    }

    /// Declares an open connection to `peer` for the purpose of failure
    /// detection: if `peer` crashes (or is already dead), this node receives
    /// an `on_link_down(peer)` callback after the configured detection
    /// delay. HyParView opens a connection per active-view entry.
    pub fn open_connection(&mut self, peer: NodeId) {
        self.commands.push(Command::OpenConnection { peer });
    }

    /// Closes a previously opened connection; no further link-down
    /// notifications will be delivered for `peer`.
    pub fn close_connection(&mut self, peer: NodeId) {
        self.commands.push(Command::CloseConnection { peer });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_records_commands() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut commands: Vec<Command<u32>> = Vec::new();
        let mut ctx = Context {
            now: SimTime::from_secs(5),
            id: NodeId(3),
            rng: &mut rng,
            commands: &mut commands,
            telemetry: &brisa_telemetry::DISABLED,
        };
        assert_eq!(ctx.now(), SimTime::from_secs(5));
        assert_eq!(ctx.id(), NodeId(3));
        ctx.send(NodeId(1), 99);
        ctx.set_timer(SimDuration::from_millis(10), TimerTag::of_kind(7));
        ctx.open_connection(NodeId(2));
        ctx.close_connection(NodeId(2));
        let _ = ctx.rng();
        assert_eq!(commands.len(), 4);
        assert!(matches!(
            commands[0],
            Command::Send {
                to: NodeId(1),
                msg: 99
            }
        ));
        assert!(matches!(commands[1], Command::SetTimer { .. }));
        assert!(matches!(
            commands[2],
            Command::OpenConnection { peer: NodeId(2) }
        ));
        assert!(matches!(
            commands[3],
            Command::CloseConnection { peer: NodeId(2) }
        ));
    }

    #[test]
    fn unit_has_zero_wire_size() {
        assert_eq!(().wire_size(), 0);
    }

    #[test]
    fn external_context_behaves_like_internal() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut commands: Vec<Command<u8>> = Vec::new();
        let mut ctx =
            Context::external(SimTime::from_millis(42), NodeId(9), &mut rng, &mut commands);
        assert_eq!(ctx.now(), SimTime::from_millis(42));
        assert_eq!(ctx.id(), NodeId(9));
        ctx.send(NodeId(1), 5);
        ctx.set_timer(SimDuration::from_millis(3), TimerTag::new(1, 2));
        assert!(matches!(
            commands.as_slice(),
            [
                Command::Send {
                    to: NodeId(1),
                    msg: 5
                },
                Command::SetTimer { .. }
            ]
        ));
    }
}
