//! Simulated time.
//!
//! The simulator uses a single global clock with microsecond resolution.
//! [`SimTime`] is an absolute instant (microseconds since the start of the
//! simulation) and [`SimDuration`] is a span between two instants. Both are
//! thin wrappers around `u64` so they are `Copy`, totally ordered and cheap
//! to store inside events.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Number of microseconds in one millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;
/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant of simulated time, in microseconds since the start of
/// the simulation (time zero).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MICROS_PER_MILLI)
    }

    /// Builds an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Raw microseconds since time zero.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since time zero (as a float, for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// Seconds since time zero (as a float, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Index of the one-second bucket this instant falls into. Used by the
    /// bandwidth meter to produce per-second series.
    pub fn second_bucket(self) -> usize {
        (self.0 / MICROS_PER_SEC) as usize
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * MICROS_PER_MILLI)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Builds a duration from a floating point number of milliseconds,
    /// rounding to the nearest microsecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((ms * MICROS_PER_MILLI as f64).round() as u64)
        }
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds as a float, for reporting.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// Seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < MICROS_PER_MILLI {
            write!(f, "{}us", self.0)
        } else if self.0 < MICROS_PER_SEC {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_micros(), 3_250_000);
        assert_eq!(((t + d) - t), d);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!((early - late), SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1500);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert!((SimDuration::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(SimTime::from_millis(1500).second_bucket(), 1);
        assert_eq!(SimTime::from_millis(999).second_bucket(), 0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_micros(), 30_000);
        assert_eq!((d / 2).as_micros(), 5_000);
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
    }
}
