//! The simulation driver.
//!
//! A [`Network`] owns every node (an instance of a type implementing
//! [`Protocol`]), the event queue, the latency model and the bandwidth
//! meter, and advances simulated time by processing events in order.
//!
//! Runs are fully deterministic: the same seed, latency model and sequence
//! of `add_node` / `schedule_crash` calls produce bit-identical executions.

use crate::bandwidth::{BandwidthMeter, Direction};
use crate::event::{EventKind, EventQueue};
use crate::latency::LatencyModel;
use crate::node::NodeId;
use crate::protocol::{Command, Context, Protocol, WireSize};
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};

/// Per-sender FIFO clocks towards every destination the sender has messaged.
///
/// Semantically a map `(sender, dest) -> last scheduled arrival`, stored as
/// one small map per sender so that all state belonging to a node can be
/// dropped in O(degree) when it crashes. The old flat
/// `HashMap<(NodeId, NodeId), SimTime>` grew without bound under churn:
/// every node pair that ever exchanged a message stayed in the table for the
/// rest of the run.
#[derive(Debug, Default)]
struct LinkClocks {
    by_sender: Vec<HashMap<NodeId, SimTime>>,
}

impl LinkClocks {
    /// Makes sure a slot exists for `sender`.
    fn ensure(&mut self, sender: NodeId) {
        if self.by_sender.len() <= sender.index() {
            self.by_sender.resize_with(sender.index() + 1, HashMap::new);
        }
    }

    /// Mutable access to the clock of the directed link `sender -> dest`,
    /// initialised to [`SimTime::ZERO`].
    fn entry(&mut self, sender: NodeId, dest: NodeId) -> &mut SimTime {
        self.ensure(sender);
        self.by_sender[sender.index()]
            .entry(dest)
            .or_insert(SimTime::ZERO)
    }

    /// Drops every clock involving `node`, in either direction. Called when
    /// `node` crashes: it will never send again, and in-flight FIFO ordering
    /// towards a dead destination no longer matters (deliveries to it are
    /// dropped).
    fn prune(&mut self, node: NodeId) {
        if let Some(own) = self.by_sender.get_mut(node.index()) {
            *own = HashMap::new();
        }
        for clocks in &mut self.by_sender {
            clocks.remove(&node);
        }
    }

    /// Number of directed links currently tracked (test/diagnostic hook).
    fn tracked_links(&self) -> usize {
        self.by_sender.iter().map(|m| m.len()).sum()
    }
}

/// Static configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Master seed; every per-node RNG is derived from it.
    pub seed: u64,
    /// Delay between a peer crashing and connected nodes receiving the
    /// corresponding `on_link_down` callback. Models the keep-alive /
    /// TCP-level failure detection period of the prototype.
    pub failure_detection_delay: SimDuration,
    /// Enforce FIFO ordering on each directed link (messages between the
    /// same pair never overtake each other), as TCP connections do.
    pub fifo_links: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            seed: 0xB215A,
            failure_detection_delay: SimDuration::from_millis(200),
            fifo_links: true,
        }
    }
}

/// Counters describing what the simulator itself observed.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Messages handed to the network layer.
    pub messages_sent: u64,
    /// Messages delivered to a live destination.
    pub messages_delivered: u64,
    /// Messages dropped because the destination was dead at delivery time.
    pub messages_dropped: u64,
    /// Events processed so far.
    pub events_processed: u64,
}

struct NodeSlot<P> {
    proto: P,
    rng: SmallRng,
    alive: bool,
    started: bool,
}

/// The discrete-event network simulator.
pub struct Network<P: Protocol> {
    config: NetworkConfig,
    latency: Box<dyn LatencyModel>,
    now: SimTime,
    queue: EventQueue<P::Message>,
    nodes: Vec<NodeSlot<P>>,
    master_rng: SmallRng,
    bandwidth: BandwidthMeter,
    /// Open connections, keyed by the owning node: `(owner, peer)`.
    ///
    /// A `BTreeSet` rather than a hash set so that iterating it (to notify
    /// peers of a crash) visits connections in a fixed order: the simulation
    /// must be bit-identical no matter which thread runs it, and std's
    /// hash-map ordering is seeded per thread.
    connections: BTreeSet<(NodeId, NodeId)>,
    /// Per directed pair, the time the last message is scheduled to arrive
    /// (used to enforce FIFO ordering); pruned when a node crashes.
    link_clock: LinkClocks,
    stats: NetStats,
    command_buf: Vec<Command<P::Message>>,
}

impl<P: Protocol> Network<P> {
    /// Creates a network with the given configuration and latency model.
    pub fn new(config: NetworkConfig, latency: Box<dyn LatencyModel>) -> Self {
        let master_rng = SmallRng::seed_from_u64(config.seed);
        Network {
            config,
            latency,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            master_rng,
            bandwidth: BandwidthMeter::new(),
            connections: BTreeSet::new(),
            link_clock: LinkClocks::default(),
            stats: NetStats::default(),
            command_buf: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulator-level statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The bandwidth meter.
    pub fn bandwidth(&self) -> &BandwidthMeter {
        &self.bandwidth
    }

    /// Number of nodes ever added (dead or alive).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// True if `id` exists and has not crashed.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).map(|n| n.alive).unwrap_or(false)
    }

    /// Identifiers of all live nodes.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Immutable access to the protocol state of `id`.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.nodes.get(id.index()).map(|n| &n.proto)
    }

    /// Mutable access to the protocol state of `id`. Intended for experiment
    /// harnesses (e.g. to inject an application-level publish); protocol
    /// logic itself should only run through simulator callbacks.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.nodes.get_mut(id.index()).map(|n| &mut n.proto)
    }

    /// Adds a node immediately. The builder receives the identifier the node
    /// will use; the node's `on_start` runs at the current simulation time.
    pub fn add_node(&mut self, build: impl FnOnce(NodeId) -> P) -> NodeId {
        self.add_node_at(self.now, build)
    }

    /// Adds a node whose `on_start` runs at `start` (which must not be in
    /// the past).
    pub fn add_node_at(&mut self, start: SimTime, build: impl FnOnce(NodeId) -> P) -> NodeId {
        assert!(start >= self.now, "cannot start a node in the past");
        let id = NodeId(self.nodes.len() as u32);
        let seed: u64 = self.master_rng.gen();
        self.nodes.push(NodeSlot {
            proto: build(id),
            rng: SmallRng::seed_from_u64(seed),
            alive: true,
            started: false,
        });
        self.bandwidth.ensure(id);
        self.queue.push(start, EventKind::Start { node: id });
        id
    }

    /// Crashes `id` immediately (fail-stop). Connected peers learn about it
    /// after the configured failure-detection delay.
    pub fn crash(&mut self, id: NodeId) {
        let at = self.now;
        self.queue.push(at, EventKind::Crash { node: id });
    }

    /// Schedules a crash of `id` at time `at`.
    pub fn schedule_crash(&mut self, id: NodeId, at: SimTime) {
        assert!(at >= self.now, "cannot schedule a crash in the past");
        self.queue.push(at, EventKind::Crash { node: id });
    }

    /// Runs an application-level closure against a node *through the
    /// simulator*, so that any commands it issues (sends, timers) are
    /// processed normally. This is how experiment harnesses inject stream
    /// messages at the source node.
    pub fn invoke(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Context<'_, P::Message>)) {
        if !self.is_alive(id) {
            return;
        }
        self.dispatch(id, f);
    }

    /// Processes events until the queue is empty or `deadline` is reached.
    /// Returns the time of the last processed event.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must exist");
            self.now = ev.time;
            self.stats.events_processed += 1;
            self.process(ev.kind);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.now
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) -> SimTime {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    /// Runs until no events remain or `max` is reached. Useful for letting a
    /// dissemination quiesce.
    pub fn run_to_quiescence(&mut self, max: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > max {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must exist");
            self.now = ev.time;
            self.stats.events_processed += 1;
            self.process(ev.kind);
        }
        self.now
    }

    /// Number of pending events (mostly useful in tests).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn process(&mut self, kind: EventKind<P::Message>) {
        match kind {
            EventKind::Start { node } => {
                if !self.is_alive(node) {
                    return;
                }
                self.nodes[node.index()].started = true;
                self.dispatch(node, |proto, ctx| proto.on_start(ctx));
            }
            EventKind::Deliver {
                from,
                to,
                msg,
                size,
            } => {
                if !self.is_alive(to) || !self.nodes[to.index()].started {
                    self.stats.messages_dropped += 1;
                    return;
                }
                self.bandwidth
                    .record(to, Direction::Download, size, self.now);
                self.stats.messages_delivered += 1;
                self.dispatch(to, |proto, ctx| proto.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, tag } => {
                if !self.is_alive(node) {
                    return;
                }
                self.dispatch(node, |proto, ctx| proto.on_timer(ctx, tag));
            }
            EventKind::LinkDown { node, peer } => {
                // Only notify if the connection is still considered open.
                if !self.is_alive(node) || !self.connections.contains(&(node, peer)) {
                    return;
                }
                self.connections.remove(&(node, peer));
                self.dispatch(node, |proto, ctx| proto.on_link_down(ctx, peer));
            }
            EventKind::Crash { node } => self.process_crash(node),
        }
    }

    fn process_crash(&mut self, node: NodeId) {
        if !self.is_alive(node) {
            return;
        }
        self.nodes[node.index()].alive = false;
        // Peers with an open connection to the crashed node detect the
        // failure after the detection delay.
        let detect_at = self.now + self.config.failure_detection_delay;
        let peers: Vec<NodeId> = self
            .connections
            .iter()
            .filter(|(_, peer)| *peer == node)
            .map(|(owner, _)| *owner)
            .collect();
        for owner in peers {
            self.queue.push(
                detect_at,
                EventKind::LinkDown {
                    node: owner,
                    peer: node,
                },
            );
        }
        // Drop the crashed node's own connections and FIFO link clocks so
        // long churn runs do not accumulate state for dead nodes.
        self.connections.retain(|(owner, _)| *owner != node);
        self.link_clock.prune(node);
    }

    /// Number of directed FIFO link clocks currently tracked. Exposed so
    /// tests can assert that crash pruning keeps the table bounded.
    pub fn tracked_link_clocks(&self) -> usize {
        self.link_clock.tracked_links()
    }

    fn dispatch(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Context<'_, P::Message>)) {
        let slot = &mut self.nodes[id.index()];
        let mut commands = std::mem::take(&mut self.command_buf);
        commands.clear();
        {
            let mut ctx = Context {
                now: self.now,
                id,
                rng: &mut slot.rng,
                commands: &mut commands,
            };
            f(&mut slot.proto, &mut ctx);
        }
        let drained = self.apply_commands(id, commands);
        self.command_buf = drained;
    }

    /// Applies the commands a callback issued. Commands are consumed by
    /// value: a `Send` moves its message straight into the event queue, so
    /// fanning a payload out to many peers costs whatever the protocol paid
    /// to build each message (an `Arc` clone for BRISA data) and nothing
    /// more. Returns the emptied vector for reuse.
    fn apply_commands(
        &mut self,
        origin: NodeId,
        mut commands: Vec<Command<P::Message>>,
    ) -> Vec<Command<P::Message>> {
        for cmd in commands.drain(..) {
            match cmd {
                Command::Send { to, msg } => {
                    let size = msg.wire_size();
                    self.stats.messages_sent += 1;
                    self.bandwidth
                        .record(origin, Direction::Upload, size, self.now);
                    let latency = {
                        let rng = &mut self.nodes[origin.index()].rng;
                        self.latency.sample(origin, to, rng)
                    };
                    let mut deliver_at = self.now + latency;
                    // FIFO clocks are only tracked towards live destinations:
                    // a delivery to a dead node is dropped on arrival, so its
                    // ordering is irrelevant — and re-inserting a clock that
                    // `process_crash` just pruned would leak one entry per
                    // (sender, dead peer) pair for the rest of the run. The
                    // failure-detection window, where senders still relay to
                    // a crashed peer, hits exactly this path.
                    if self.config.fifo_links && self.is_alive(to) {
                        let clock = self.link_clock.entry(origin, to);
                        if deliver_at < *clock {
                            deliver_at = *clock + SimDuration::from_micros(1);
                        }
                        *clock = deliver_at;
                    }
                    self.queue.push(
                        deliver_at,
                        EventKind::Deliver {
                            from: origin,
                            to,
                            msg,
                            size,
                        },
                    );
                }
                Command::SetTimer { delay, tag } => {
                    self.queue
                        .push(self.now + delay, EventKind::Timer { node: origin, tag });
                }
                Command::OpenConnection { peer } => {
                    self.connections.insert((origin, peer));
                    // Connecting to a node that is already dead fails after
                    // the detection delay, like a TCP connect timeout.
                    if !self.is_alive(peer) {
                        self.queue.push(
                            self.now + self.config.failure_detection_delay,
                            EventKind::LinkDown { node: origin, peer },
                        );
                    }
                }
                Command::CloseConnection { peer } => {
                    self.connections.remove(&(origin, peer));
                }
            }
        }
        commands
    }

    /// One-way "typical" latency between a pair according to the latency
    /// model, used as the point-to-point reference series in Figure 9.
    pub fn typical_latency(&mut self, src: NodeId, dst: NodeId) -> SimDuration {
        let rng = &mut self.master_rng;
        self.latency.typical(src, dst, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TimerTag;
    use crate::latency::FixedLatency;

    /// A tiny ping protocol used to exercise the simulator.
    #[derive(Debug)]
    struct Pinger {
        peer: Option<NodeId>,
        received: Vec<(NodeId, u8, SimTime)>,
        timer_fired: u32,
        link_down: Vec<NodeId>,
    }

    #[derive(Debug, Clone)]
    struct Ping(u8);
    impl WireSize for Ping {
        fn wire_size(&self) -> usize {
            100
        }
    }

    impl Pinger {
        fn new(peer: Option<NodeId>) -> Self {
            Pinger {
                peer,
                received: Vec::new(),
                timer_fired: 0,
                link_down: Vec::new(),
            }
        }
    }

    impl Protocol for Pinger {
        type Message = Ping;

        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            if let Some(peer) = self.peer {
                ctx.open_connection(peer);
                ctx.send(peer, Ping(1));
                ctx.set_timer(SimDuration::from_millis(50), TimerTag::of_kind(1));
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
            self.received.push((from, msg.0, ctx.now()));
            if msg.0 == 1 {
                ctx.send(from, Ping(2));
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, Ping>, _tag: TimerTag) {
            self.timer_fired += 1;
        }

        fn on_link_down(&mut self, _ctx: &mut Context<'_, Ping>, peer: NodeId) {
            self.link_down.push(peer);
        }
    }

    fn fixed_net(ms: u64) -> Network<Pinger> {
        Network::new(
            NetworkConfig::default(),
            Box::new(FixedLatency::new(SimDuration::from_millis(ms))),
        )
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut net = fixed_net(10);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(1));
        // a received the ping at t=10ms, b received the pong at t=20ms.
        let a_state = net.node(a).unwrap();
        let b_state = net.node(b).unwrap();
        assert_eq!(a_state.received.len(), 1);
        assert_eq!(a_state.received[0].1, 1);
        assert_eq!(a_state.received[0].2, SimTime::from_millis(10));
        assert_eq!(b_state.received.len(), 1);
        assert_eq!(b_state.received[0].1, 2);
        assert_eq!(b_state.received[0].2, SimTime::from_millis(20));
        assert_eq!(b_state.timer_fired, 1);
        assert_eq!(net.stats().messages_sent, 2);
        assert_eq!(net.stats().messages_delivered, 2);
    }

    #[test]
    fn bandwidth_is_accounted_both_ways() {
        let mut net = fixed_net(5);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(1));
        let bw = net.bandwidth();
        assert_eq!(bw.node(b).unwrap().upload_total, 100);
        assert_eq!(bw.node(b).unwrap().download_total, 100);
        assert_eq!(bw.node(a).unwrap().upload_total, 100);
        assert_eq!(bw.node(a).unwrap().download_total, 100);
    }

    #[test]
    fn crash_drops_messages_and_notifies_connected_peer() {
        let mut net = fixed_net(10);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        // Crash `a` immediately: b's ping (in flight) is dropped and b is
        // notified of the broken link after the detection delay.
        net.crash(a);
        net.run_until(SimTime::from_secs(2));
        assert!(!net.is_alive(a));
        assert!(net.is_alive(b));
        assert_eq!(net.node(a).unwrap().received.len(), 0);
        assert_eq!(net.node(b).unwrap().link_down, vec![a]);
        assert_eq!(net.stats().messages_dropped, 1);
        assert_eq!(net.alive_ids(), vec![b]);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let run = || {
            let mut net = fixed_net(3);
            let a = net.add_node(|_| Pinger::new(None));
            let _b = net.add_node(move |_| Pinger::new(Some(a)));
            net.run_until(SimTime::from_secs(1));
            net.stats().clone()
        };
        let s1 = run();
        let s2 = run();
        assert_eq!(s1.messages_sent, s2.messages_sent);
        assert_eq!(s1.events_processed, s2.events_processed);
    }

    #[test]
    fn invoke_routes_commands_through_simulator() {
        let mut net = fixed_net(1);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(|_| Pinger::new(None));
        net.run_until(SimTime::from_millis(1));
        net.invoke(b, |_proto, ctx| {
            ctx.send(a, Ping(7));
        });
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.node(a).unwrap().received.len(), 1);
        assert_eq!(net.node(a).unwrap().received[0].1, 7);
    }

    #[test]
    fn fifo_ordering_is_preserved_per_link() {
        // With FIFO links, a burst of messages sent back-to-back arrives in
        // order even though individual latency samples could reorder them.
        let mut net: Network<Pinger> = Network::new(
            NetworkConfig::default(),
            Box::new(crate::latency::ClusterLatency::default()),
        );
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(|_| Pinger::new(None));
        net.run_until(SimTime::from_millis(1));
        net.invoke(b, |_p, ctx| {
            for i in 0..20u8 {
                ctx.send(a, Ping(i));
            }
        });
        net.run_until(SimTime::from_secs(1));
        let seq: Vec<u8> = net.node(a).unwrap().received.iter().map(|r| r.1).collect();
        assert_eq!(seq, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn delayed_start_defers_on_start() {
        let mut net = fixed_net(1);
        let a = net.add_node(|_| Pinger::new(None));
        let _b = net.add_node_at(SimTime::from_secs(5), move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(4));
        assert_eq!(net.node(a).unwrap().received.len(), 0);
        net.run_until(SimTime::from_secs(6));
        assert_eq!(net.node(a).unwrap().received.len(), 1);
    }

    #[test]
    fn crash_prunes_link_clocks() {
        let mut net = fixed_net(1);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        let c = net.add_node(move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(1));
        // a<->b and a<->c exchanged messages: 4 directed clocks tracked.
        assert_eq!(net.tracked_link_clocks(), 4);
        net.crash(b);
        net.run_until(SimTime::from_secs(2));
        // Everything involving b is gone; a<->c remains.
        assert_eq!(net.tracked_link_clocks(), 2);
        // Senders that have not yet detected the failure keep relaying to
        // the dead peer; those sends must not resurrect the pruned clocks.
        net.invoke(a, |_p, ctx| ctx.send(b, Ping(9)));
        net.run_until(SimTime::from_secs(3));
        assert_eq!(
            net.tracked_link_clocks(),
            2,
            "sends to a dead peer leave no clock behind"
        );
        net.crash(a);
        net.crash(c);
        net.run_until(SimTime::from_secs(4));
        assert_eq!(net.tracked_link_clocks(), 0);
    }

    #[test]
    fn connecting_to_dead_peer_reports_link_down() {
        let mut net = fixed_net(1);
        let a = net.add_node(|_| Pinger::new(None));
        net.run_until(SimTime::from_millis(1));
        net.crash(a);
        net.run_until(SimTime::from_millis(2));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.node(b).unwrap().link_down, vec![a]);
    }
}
