//! The simulation driver.
//!
//! A [`Network`] owns every node (an instance of a type implementing
//! [`Protocol`]), the event queue, the latency model and the bandwidth
//! meter, and advances simulated time by processing events in order.
//!
//! Runs are fully deterministic: the same seed, latency model and sequence
//! of `add_node` / `schedule_crash` calls produce bit-identical executions.
//!
//! The hot path is built on dense, index-addressed state (see
//! [`crate::sched`] for the timing-wheel event queue and [`crate::links`]
//! for the adjacency/link-clock vectors); the steady-state event loop does
//! not allocate per event.

use crate::bandwidth::{BandwidthMeter, Direction, MeterMode};
use crate::event::{EventKind, EventQueue};
use crate::faults::{FaultConfig, FaultLayer, LinkFaults, PartitionSpec, Routed};
use crate::latency::LatencyModel;
use crate::links::{Adjacency, LinkClocks};
use crate::node::NodeId;
use crate::protocol::{Command, Context, Protocol, WireSize};
use crate::sched::{SchedulerKind, TraceOp};
use crate::seed::split_mix64;
use crate::time::{SimDuration, SimTime};
use brisa_telemetry::{EventKind as TelEventKind, Telemetry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Static configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Master seed; every per-node RNG is derived from it.
    pub seed: u64,
    /// Delay between a peer crashing and connected nodes receiving the
    /// corresponding `on_link_down` callback. Models the keep-alive /
    /// TCP-level failure detection period of the prototype.
    pub failure_detection_delay: SimDuration,
    /// Enforce FIFO ordering on each directed link (messages between the
    /// same pair never overtake each other), as TCP connections do.
    pub fifo_links: bool,
    /// Which event-queue implementation to use. The timing wheel is the
    /// default; the binary heap is kept as the reference baseline for
    /// benches and equivalence tests. Both produce bit-identical runs.
    pub scheduler: SchedulerKind,
    /// Record every scheduler push/pop so benches can replay the exact
    /// operation sequence through a queue in isolation (see
    /// [`Network::take_event_trace`]). Off by default; costs one branch per
    /// operation when off.
    pub trace_events: bool,
    /// Deterministic fault injection (per-link loss, latency degradation,
    /// timed partitions). Inert by default, in which case the fault layer
    /// costs a single branch per message and the run is bit-identical to
    /// one without the layer. See [`crate::faults`].
    pub faults: FaultConfig,
    /// Bandwidth retention: per-second buckets (default) or totals only
    /// (scale mode — per-second history would cost `16 bytes × simulated
    /// seconds` per node and nothing in the streaming result path reads
    /// it). Totals are identical in both modes.
    pub meter: MeterMode,
    /// Observability handle exposed to protocol callbacks and fed with
    /// simulator-level health (scheduler occupancy, events processed,
    /// partition windows). Disabled by default; strictly out-of-band — a
    /// run with any telemetry setting is bit-identical to a run with none
    /// (enforced by the fingerprint tests).
    pub telemetry: Telemetry,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            seed: 0xB215A,
            failure_detection_delay: SimDuration::from_millis(200),
            fifo_links: true,
            scheduler: SchedulerKind::default(),
            trace_events: false,
            faults: FaultConfig::default(),
            meter: MeterMode::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Counters describing what the simulator itself observed.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Messages handed to the network layer.
    pub messages_sent: u64,
    /// Messages delivered to a live destination.
    pub messages_delivered: u64,
    /// Messages dropped because the destination was dead at delivery time.
    pub messages_dropped: u64,
    /// Messages lost to the fault layer's per-link Bernoulli loss. Disjoint
    /// from [`NetStats::messages_dropped`]: a faulted message never reaches
    /// delivery, a dropped one reached a dead destination.
    pub messages_lost_to_faults: u64,
    /// Messages discarded because an active partition cut sender from
    /// receiver ([`crate::faults::PartitionMode::Drop`]).
    pub messages_cut_by_partition: u64,
    /// Events processed so far.
    pub events_processed: u64,
}

struct NodeSlot<P> {
    proto: P,
    rng: SmallRng,
    alive: bool,
    started: bool,
    /// Per-node cause counter for lane-key event priorities: the n-th event
    /// *caused* by this node gets priority `(id << 32) | n`. Together with
    /// the event time this forms a globally unique key that depends only on
    /// the node's own processing history — not on global push order — which
    /// is what makes the sharded driver's event order identical to the
    /// sequential one.
    lane_seq: u32,
}

/// The discrete-event network simulator.
pub struct Network<P: Protocol> {
    config: NetworkConfig,
    latency: Box<dyn LatencyModel>,
    now: SimTime,
    queue: EventQueue<P::Message>,
    nodes: Vec<NodeSlot<P>>,
    master_rng: SmallRng,
    /// Dedicated RNG for reference-latency queries ([`Self::typical_latency`]).
    /// Derived once from the master seed, *not* from `master_rng`: drawing
    /// reference latencies must never reorder the seeds of nodes added
    /// afterwards.
    reference_rng: SmallRng,
    bandwidth: BandwidthMeter,
    /// Open connections as per-node sorted adjacency vectors (plus a
    /// reverse index), iterated in fixed `NodeId` order so the simulation is
    /// bit-identical no matter which thread runs it.
    connections: Adjacency,
    /// Per directed pair, the time the last message is scheduled to arrive
    /// (used to enforce FIFO ordering); pruned in place when a node crashes.
    link_clock: LinkClocks,
    stats: NetStats,
    /// Fault-injection layer, consulted between command drain and delivery
    /// scheduling. Inert by default (one branch per send).
    faults: FaultLayer,
    command_buf: Vec<Command<P::Message>>,
    /// Reused buffer for the peers notified by `process_crash`.
    crash_buf: Vec<NodeId>,
}

impl<P: Protocol> Network<P> {
    /// Creates a network with the given configuration and latency model.
    pub fn new(config: NetworkConfig, latency: Box<dyn LatencyModel>) -> Self {
        let master_rng = SmallRng::seed_from_u64(config.seed);
        let reference_rng = SmallRng::seed_from_u64(split_mix64(config.seed, 0x0DD5_EED5));
        let queue = EventQueue::new(config.scheduler, config.trace_events);
        let faults = FaultLayer::new(config.seed, config.faults.clone());
        let bandwidth = BandwidthMeter::with_mode(config.meter);
        Network {
            config,
            latency,
            now: SimTime::ZERO,
            queue,
            nodes: Vec::new(),
            master_rng,
            reference_rng,
            bandwidth,
            connections: Adjacency::default(),
            link_clock: LinkClocks::default(),
            stats: NetStats::default(),
            faults,
            command_buf: Vec::new(),
            crash_buf: Vec::new(),
        }
    }

    /// Replaces the live per-link fault profile (loss rate, jitter, latency
    /// degradation), effective for every message sent from now on.
    /// Experiment harnesses use this to switch faults on at a scheduled
    /// point of the run (e.g. stream start).
    pub fn set_link_faults(&mut self, link: LinkFaults) {
        self.faults.set_link_faults(link);
    }

    /// Installs a timed partition at runtime, in addition to any configured
    /// through [`NetworkConfig::faults`]. The window may start immediately;
    /// it must not lie entirely in the past.
    pub fn add_partition(&mut self, spec: PartitionSpec) {
        assert!(spec.end > self.now, "partition healed in the past");
        self.config.telemetry.event(
            self.now.as_micros(),
            u32::MAX,
            TelEventKind::PartitionApply,
            spec.start.as_micros(),
            spec.end.as_micros(),
        );
        self.faults.add_partition(spec);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulator-level statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The bandwidth meter.
    pub fn bandwidth(&self) -> &BandwidthMeter {
        &self.bandwidth
    }

    /// Number of nodes ever added (dead or alive).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// True if `id` exists and has not crashed.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).map(|n| n.alive).unwrap_or(false)
    }

    /// Iterator over the identifiers of all live nodes, in ascending order.
    /// Allocation-free; prefer this over [`Self::alive_ids`] in hot loops.
    pub fn alive_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Identifiers of all live nodes, collected into a fresh vector.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.alive_iter().collect()
    }

    /// Immutable access to the protocol state of `id`.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.nodes.get(id.index()).map(|n| &n.proto)
    }

    /// Mutable access to the protocol state of `id`. Intended for experiment
    /// harnesses (e.g. to inject an application-level publish); protocol
    /// logic itself should only run through simulator callbacks.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.nodes.get_mut(id.index()).map(|n| &mut n.proto)
    }

    /// Adds a node immediately. The builder receives the identifier the node
    /// will use; the node's `on_start` runs at the current simulation time.
    pub fn add_node(&mut self, build: impl FnOnce(NodeId) -> P) -> NodeId {
        self.add_node_at(self.now, build)
    }

    /// Adds a node whose `on_start` runs at `start` (which must not be in
    /// the past).
    pub fn add_node_at(&mut self, start: SimTime, build: impl FnOnce(NodeId) -> P) -> NodeId {
        assert!(start >= self.now, "cannot start a node in the past");
        let id = NodeId(self.nodes.len() as u32);
        let seed: u64 = self.master_rng.gen();
        self.add_node_with_seed(id, start, seed, build);
        id
    }

    /// Adds a node with an explicit identifier and RNG seed. This is the
    /// seam the sharded driver uses: it draws seeds from its own master RNG
    /// in global `add_node` order and hands each shard the `(id, seed)`
    /// pair, so per-node streams match the sequential run exactly.
    pub(crate) fn add_node_with_seed(
        &mut self,
        id: NodeId,
        start: SimTime,
        seed: u64,
        build: impl FnOnce(NodeId) -> P,
    ) {
        assert_eq!(
            id.index(),
            self.nodes.len(),
            "node ids must be added densely"
        );
        self.nodes.push(NodeSlot {
            proto: build(id),
            rng: SmallRng::seed_from_u64(seed),
            alive: true,
            started: false,
            lane_seq: 0,
        });
        self.bandwidth.ensure(id);
        let prio = self.lane_key(id);
        self.queue.push(start, prio, EventKind::Start { node: id });
    }

    /// Draws the next lane-key priority for an event caused by `lane`: the
    /// causing node's id in the high 32 bits, its cause counter in the low
    /// 32. Unknown lanes (e.g. a crash scheduled for a node never added)
    /// get counter 0 — such events are ignored at processing time anyway.
    fn lane_key(&mut self, lane: NodeId) -> u64 {
        let hi = (lane.0 as u64) << 32;
        match self.nodes.get_mut(lane.index()) {
            Some(slot) => {
                let key = hi | slot.lane_seq as u64;
                slot.lane_seq = slot.lane_seq.wrapping_add(1);
                key
            }
            None => hi,
        }
    }

    /// Crashes `id` immediately (fail-stop). Connected peers learn about it
    /// after the configured failure-detection delay.
    pub fn crash(&mut self, id: NodeId) {
        let at = self.now;
        let prio = self.lane_key(id);
        self.queue.push(at, prio, EventKind::Crash { node: id });
    }

    /// Schedules a crash of `id` at time `at`.
    pub fn schedule_crash(&mut self, id: NodeId, at: SimTime) {
        assert!(at >= self.now, "cannot schedule a crash in the past");
        let prio = self.lane_key(id);
        self.queue.push(at, prio, EventKind::Crash { node: id });
    }

    /// Runs an application-level closure against a node *through the
    /// simulator*, so that any commands it issues (sends, timers) are
    /// processed normally. This is how experiment harnesses inject stream
    /// messages at the source node. Ignored for nodes that are dead or whose
    /// `on_start` has not yet run (a node that has not joined cannot
    /// originate traffic, exactly like `Deliver` refuses them input).
    pub fn invoke(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Context<'_, P::Message>)) {
        if !self.is_alive(id) || !self.nodes[id.index()].started {
            return;
        }
        self.dispatch(id, f);
    }

    /// Processes events until the queue is empty or `deadline` is reached.
    /// Returns the time of the last processed event.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must exist");
            self.now = ev.time;
            self.stats.events_processed += 1;
            self.process(ev.item);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.publish_telemetry();
        self.now
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) -> SimTime {
        let deadline = self.now + d;
        self.run_until(deadline)
    }

    /// Runs until no events remain or `max` is reached. Useful for letting a
    /// dissemination quiesce.
    pub fn run_to_quiescence(&mut self, max: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > max {
                break;
            }
            let ev = self.queue.pop().expect("peeked event must exist");
            self.now = ev.time;
            self.stats.events_processed += 1;
            self.process(ev.item);
        }
        self.publish_telemetry();
        self.now
    }

    /// Publishes simulator health to an attached telemetry registry, once
    /// per `run_*` call. Out-of-band by construction: it only *reads*
    /// simulator state, so enabled and disabled runs stay bit-identical.
    fn publish_telemetry(&self) {
        let tel = &self.config.telemetry;
        if !tel.is_enabled() {
            return;
        }
        tel.gauge("sim.sched_occupancy")
            .set(self.queue.len() as u64);
        tel.gauge("sim.events_processed")
            .set(self.stats.events_processed);
        tel.gauge("sim.messages_delivered")
            .set(self.stats.messages_delivered);
        tel.gauge("sim.now_us").set(self.now.as_micros());
    }

    /// Number of pending events (mostly useful in tests).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn process(&mut self, kind: EventKind<P::Message>) {
        match kind {
            EventKind::Start { node } => {
                if !self.is_alive(node) {
                    return;
                }
                self.nodes[node.index()].started = true;
                self.dispatch(node, |proto, ctx| proto.on_start(ctx));
            }
            EventKind::Deliver {
                from,
                to,
                msg,
                size,
            } => {
                if !self.is_alive(to) || !self.nodes[to.index()].started {
                    self.stats.messages_dropped += 1;
                    return;
                }
                self.bandwidth
                    .record(to, Direction::Download, size, self.now);
                self.stats.messages_delivered += 1;
                self.dispatch(to, |proto, ctx| proto.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, tag } => {
                if !self.is_alive(node) {
                    return;
                }
                self.dispatch(node, |proto, ctx| proto.on_timer(ctx, tag));
            }
            EventKind::LinkDown { node, peer } => {
                // Only notify if the connection is still considered open.
                if !self.is_alive(node) || !self.connections.contains(node, peer) {
                    return;
                }
                self.connections.remove(node, peer);
                self.dispatch(node, |proto, ctx| proto.on_link_down(ctx, peer));
            }
            EventKind::Crash { node } => self.process_crash(node),
        }
    }

    fn process_crash(&mut self, node: NodeId) {
        if !self.is_alive(node) {
            return;
        }
        self.nodes[node.index()].alive = false;
        // Peers with an open connection to the crashed node detect the
        // failure after the detection delay. The reverse adjacency index
        // yields them directly in O(degree); the buffer is reused across
        // crashes.
        let detect_at = self.now + self.config.failure_detection_delay;
        self.crash_buf.clear();
        self.crash_buf
            .extend_from_slice(self.connections.incoming_of(node));
        for i in 0..self.crash_buf.len() {
            let owner = self.crash_buf[i];
            // The crashed node is the lane: `incoming_of` yields owners in
            // ascending id order, so these draws are a deterministic
            // function of the crash itself.
            let prio = self.lane_key(node);
            self.queue.push(
                detect_at,
                prio,
                EventKind::LinkDown {
                    node: owner,
                    peer: node,
                },
            );
        }
        // Drop the crashed node's own connections, FIFO link clocks and
        // fault-layer draw counters so long churn runs do not accumulate
        // state for dead nodes.
        self.connections.clear_outgoing(node);
        self.link_clock.prune(node);
        self.faults.prune(node);
    }

    /// Number of directed FIFO link clocks currently tracked. Exposed so
    /// tests can assert that crash pruning keeps the table bounded.
    pub fn tracked_link_clocks(&self) -> usize {
        self.link_clock.tracked_links()
    }

    /// Capacity of `sender`'s link-clock storage. Test hook: asserts that
    /// crash pruning clears in place instead of reallocating.
    pub fn link_clock_capacity(&self, sender: NodeId) -> usize {
        self.link_clock.slot_capacity(sender)
    }

    /// Snapshot of every tracked FIFO link clock as `(sender, dest, last
    /// scheduled arrival)`, in `(sender, dest)` order. Diagnostic hook for
    /// the online invariant checkers (per-link clocks must be monotone over
    /// a run).
    pub fn link_clock_entries(&self) -> Vec<(NodeId, NodeId, SimTime)> {
        self.link_clock
            .entries()
            .map(|(s, d, t)| (s, d, *t))
            .collect()
    }

    /// Takes the recorded scheduler operation trace. Empty unless
    /// [`NetworkConfig::trace_events`] was set; intended for benches that
    /// replay real workloads through a scheduler in isolation.
    pub fn take_event_trace(&mut self) -> Vec<TraceOp> {
        self.queue.take_trace()
    }

    fn dispatch(&mut self, id: NodeId, f: impl FnOnce(&mut P, &mut Context<'_, P::Message>)) {
        let slot = &mut self.nodes[id.index()];
        let mut commands = std::mem::take(&mut self.command_buf);
        commands.clear();
        {
            let mut ctx = Context {
                now: self.now,
                id,
                rng: &mut slot.rng,
                commands: &mut commands,
                telemetry: &self.config.telemetry,
            };
            f(&mut slot.proto, &mut ctx);
        }
        let drained = self.apply_commands(id, commands);
        self.command_buf = drained;
    }

    /// Applies the commands a callback issued. Commands are consumed by
    /// value: a `Send` moves its message straight into the event queue, so
    /// fanning a payload out to many peers costs whatever the protocol paid
    /// to build each message (an `Arc` clone for BRISA data) and nothing
    /// more. Returns the emptied vector for reuse.
    fn apply_commands(
        &mut self,
        origin: NodeId,
        mut commands: Vec<Command<P::Message>>,
    ) -> Vec<Command<P::Message>> {
        for cmd in commands.drain(..) {
            match cmd {
                Command::Send { to, msg } => {
                    let size = msg.wire_size();
                    self.stats.messages_sent += 1;
                    self.bandwidth
                        .record(origin, Direction::Upload, size, self.now);
                    let latency = {
                        let rng = &mut self.nodes[origin.index()].rng;
                        self.latency.sample(origin, to, rng)
                    };
                    // The fault layer sits between command drain and
                    // delivery scheduling. The sender has already paid the
                    // upload bandwidth: a lost message went onto the wire,
                    // it just never arrives. Loss/jitter draws come from the
                    // layer's own per-link split-seed PRF, so the node RNG
                    // stream above is identical with or without faults.
                    let mut deliver_at = self.now + latency;
                    if !self.faults.is_inert() {
                        match self.faults.route(origin, to, self.now, latency) {
                            Routed::Deliver(at) => deliver_at = at,
                            Routed::LostToFaults => {
                                self.stats.messages_lost_to_faults += 1;
                                continue;
                            }
                            Routed::CutByPartition => {
                                self.stats.messages_cut_by_partition += 1;
                                continue;
                            }
                        }
                    }
                    // FIFO clocks are only tracked towards live destinations:
                    // a delivery to a dead node is dropped on arrival, so its
                    // ordering is irrelevant — and re-inserting a clock that
                    // `process_crash` just pruned would leak one entry per
                    // (sender, dead peer) pair for the rest of the run. The
                    // failure-detection window, where senders still relay to
                    // a crashed peer, hits exactly this path.
                    if self.config.fifo_links && self.is_alive(to) {
                        let clock = self.link_clock.entry(origin, to);
                        if deliver_at < *clock {
                            deliver_at = *clock + SimDuration::from_micros(1);
                        }
                        *clock = deliver_at;
                    }
                    let prio = self.lane_key(origin);
                    self.queue.push(
                        deliver_at,
                        prio,
                        EventKind::Deliver {
                            from: origin,
                            to,
                            msg,
                            size,
                        },
                    );
                }
                Command::SetTimer { delay, tag } => {
                    let prio = self.lane_key(origin);
                    self.queue.push(
                        self.now + delay,
                        prio,
                        EventKind::Timer { node: origin, tag },
                    );
                }
                Command::OpenConnection { peer } => {
                    self.connections.insert(origin, peer);
                    // Connecting to a node that is already dead — or across
                    // an active partition cut, whose handshake traffic is
                    // blackholed — fails after the detection delay, like a
                    // TCP connect timeout.
                    if !self.is_alive(peer)
                        || (!self.faults.is_inert() && self.faults.is_cut(self.now, origin, peer))
                    {
                        let prio = self.lane_key(origin);
                        self.queue.push(
                            self.now + self.config.failure_detection_delay,
                            prio,
                            EventKind::LinkDown { node: origin, peer },
                        );
                    }
                }
                Command::CloseConnection { peer } => {
                    self.connections.remove(origin, peer);
                }
            }
        }
        commands
    }

    /// The accounting-based memory footprint of the simulation right now
    /// (see [`Footprint`]). O(nodes); intended for end-of-run sampling by
    /// the scale benches, not for the event loop.
    pub fn footprint(&self) -> Footprint {
        let slot_overhead = std::mem::size_of::<NodeSlot<P>>() - std::mem::size_of::<P>();
        Footprint {
            nodes: self.nodes.len(),
            node_state_bytes: self
                .nodes
                .iter()
                .map(|n| n.proto.approx_state_bytes() + slot_overhead)
                .sum(),
            // Each pending entry carries the event record plus its
            // `(time, prio, sequence)` sort key.
            queue_bytes: self.queue.len() * (event_record_size::<P>() + 24),
            adjacency_bytes: self.connections.approx_bytes(),
            link_clock_bytes: self.link_clock.approx_bytes(),
            bandwidth_bytes: self.bandwidth.approx_bytes(),
        }
    }

    /// One-way "typical" latency between a pair according to the latency
    /// model, used as the point-to-point reference series in Figure 9.
    ///
    /// Draws from a dedicated reference RNG (derived once from the master
    /// seed), never from the master RNG: calling this must not reorder the
    /// seeds of nodes added afterwards.
    pub fn typical_latency(&mut self, src: NodeId, dst: NodeId) -> SimDuration {
        let rng = &mut self.reference_rng;
        self.latency.typical(src, dst, rng)
    }
}

/// Size in bytes of one in-queue event record for protocol `P` (the
/// payload the schedulers actually move). Exposed for benches that replay
/// scheduler traces with realistically sized entries.
pub fn event_record_size<P: Protocol>() -> usize {
    std::mem::size_of::<EventKind<P::Message>>()
}

/// Accounting-based memory footprint of a simulation, split by component.
///
/// This is the "peak RSS proxy" of the scale benches: instead of asking the
/// OS (noisy, allocator-dependent), every dense structure reports the bytes
/// its capacities occupy and every protocol stack estimates its own state
/// through [`Protocol::approx_state_bytes`]. Sampled at collect time, when
/// the per-node ledgers and link tables are at their largest.
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// Nodes ever added (dead slots included — their storage remains).
    pub nodes: usize,
    /// Sum of the per-node protocol-state estimates plus the slot overhead
    /// (RNG, flags).
    pub node_state_bytes: usize,
    /// Pending event records in the scheduler.
    pub queue_bytes: usize,
    /// Connection table (adjacency vectors + reverse index).
    pub adjacency_bytes: usize,
    /// FIFO link clocks.
    pub link_clock_bytes: usize,
    /// Bandwidth meter (totals, and per-second buckets if retained).
    pub bandwidth_bytes: usize,
}

impl Footprint {
    /// Total accounted bytes.
    pub fn total_bytes(&self) -> usize {
        self.node_state_bytes
            + self.queue_bytes
            + self.adjacency_bytes
            + self.link_clock_bytes
            + self.bandwidth_bytes
    }

    /// Accounted bytes per node ever added.
    pub fn bytes_per_node(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.nodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TimerTag;
    use crate::latency::FixedLatency;

    /// A tiny ping protocol used to exercise the simulator.
    #[derive(Debug)]
    struct Pinger {
        peer: Option<NodeId>,
        received: Vec<(NodeId, u8, SimTime)>,
        timer_fired: u32,
        link_down: Vec<NodeId>,
    }

    #[derive(Debug, Clone)]
    struct Ping(u8);
    impl WireSize for Ping {
        fn wire_size(&self) -> usize {
            100
        }
    }

    impl Pinger {
        fn new(peer: Option<NodeId>) -> Self {
            Pinger {
                peer,
                received: Vec::new(),
                timer_fired: 0,
                link_down: Vec::new(),
            }
        }
    }

    impl Protocol for Pinger {
        type Message = Ping;

        fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
            if let Some(peer) = self.peer {
                ctx.open_connection(peer);
                ctx.send(peer, Ping(1));
                ctx.set_timer(SimDuration::from_millis(50), TimerTag::of_kind(1));
            }
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, msg: Ping) {
            self.received.push((from, msg.0, ctx.now()));
            if msg.0 == 1 {
                ctx.send(from, Ping(2));
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_, Ping>, _tag: TimerTag) {
            self.timer_fired += 1;
        }

        fn on_link_down(&mut self, _ctx: &mut Context<'_, Ping>, peer: NodeId) {
            self.link_down.push(peer);
        }
    }

    fn fixed_net(ms: u64) -> Network<Pinger> {
        Network::new(
            NetworkConfig::default(),
            Box::new(FixedLatency::new(SimDuration::from_millis(ms))),
        )
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut net = fixed_net(10);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(1));
        // a received the ping at t=10ms, b received the pong at t=20ms.
        let a_state = net.node(a).unwrap();
        let b_state = net.node(b).unwrap();
        assert_eq!(a_state.received.len(), 1);
        assert_eq!(a_state.received[0].1, 1);
        assert_eq!(a_state.received[0].2, SimTime::from_millis(10));
        assert_eq!(b_state.received.len(), 1);
        assert_eq!(b_state.received[0].1, 2);
        assert_eq!(b_state.received[0].2, SimTime::from_millis(20));
        assert_eq!(b_state.timer_fired, 1);
        assert_eq!(net.stats().messages_sent, 2);
        assert_eq!(net.stats().messages_delivered, 2);
    }

    #[test]
    fn bandwidth_is_accounted_both_ways() {
        let mut net = fixed_net(5);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(1));
        let bw = net.bandwidth();
        assert_eq!(bw.node(b).unwrap().upload_total, 100);
        assert_eq!(bw.node(b).unwrap().download_total, 100);
        assert_eq!(bw.node(a).unwrap().upload_total, 100);
        assert_eq!(bw.node(a).unwrap().download_total, 100);
    }

    #[test]
    fn crash_drops_messages_and_notifies_connected_peer() {
        let mut net = fixed_net(10);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        // Crash `a` immediately: b's ping (in flight) is dropped and b is
        // notified of the broken link after the detection delay.
        net.crash(a);
        net.run_until(SimTime::from_secs(2));
        assert!(!net.is_alive(a));
        assert!(net.is_alive(b));
        assert_eq!(net.node(a).unwrap().received.len(), 0);
        assert_eq!(net.node(b).unwrap().link_down, vec![a]);
        assert_eq!(net.stats().messages_dropped, 1);
        // A dead-destination drop is not a fault-layer loss: the counters
        // are disjoint.
        assert_eq!(net.stats().messages_lost_to_faults, 0);
        assert_eq!(net.stats().messages_cut_by_partition, 0);
        assert_eq!(net.alive_ids(), vec![b]);
        assert_eq!(net.alive_iter().collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let run = || {
            let mut net = fixed_net(3);
            let a = net.add_node(|_| Pinger::new(None));
            let _b = net.add_node(move |_| Pinger::new(Some(a)));
            net.run_until(SimTime::from_secs(1));
            net.stats().clone()
        };
        let s1 = run();
        let s2 = run();
        assert_eq!(s1.messages_sent, s2.messages_sent);
        assert_eq!(s1.events_processed, s2.events_processed);
    }

    #[test]
    fn invoke_routes_commands_through_simulator() {
        let mut net = fixed_net(1);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(|_| Pinger::new(None));
        net.run_until(SimTime::from_millis(1));
        net.invoke(b, |_proto, ctx| {
            ctx.send(a, Ping(7));
        });
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.node(a).unwrap().received.len(), 1);
        assert_eq!(net.node(a).unwrap().received[0].1, 7);
    }

    #[test]
    fn invoke_before_start_is_ignored() {
        let mut net = fixed_net(1);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node_at(SimTime::from_secs(5), |_| Pinger::new(None));
        net.run_until(SimTime::from_millis(1));
        // b exists and is alive, but its on_start has not run yet: a harness
        // must not be able to inject traffic through it.
        assert!(net.is_alive(b));
        net.invoke(b, |_proto, ctx| {
            ctx.send(a, Ping(9));
        });
        net.run_until(SimTime::from_secs(10));
        assert_eq!(
            net.node(a).unwrap().received.len(),
            0,
            "publish into an unstarted node must be dropped"
        );
        // After on_start has run, the same invoke goes through.
        net.invoke(b, |_proto, ctx| {
            ctx.send(a, Ping(9));
        });
        net.run_until(SimTime::from_secs(11));
        assert_eq!(net.node(a).unwrap().received.len(), 1);
    }

    #[test]
    fn fifo_ordering_is_preserved_per_link() {
        // With FIFO links, a burst of messages sent back-to-back arrives in
        // order even though individual latency samples could reorder them.
        let mut net: Network<Pinger> = Network::new(
            NetworkConfig::default(),
            Box::new(crate::latency::ClusterLatency::default()),
        );
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(|_| Pinger::new(None));
        net.run_until(SimTime::from_millis(1));
        net.invoke(b, |_p, ctx| {
            for i in 0..20u8 {
                ctx.send(a, Ping(i));
            }
        });
        net.run_until(SimTime::from_secs(1));
        let seq: Vec<u8> = net.node(a).unwrap().received.iter().map(|r| r.1).collect();
        assert_eq!(seq, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn delayed_start_defers_on_start() {
        let mut net = fixed_net(1);
        let a = net.add_node(|_| Pinger::new(None));
        let _b = net.add_node_at(SimTime::from_secs(5), move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(4));
        assert_eq!(net.node(a).unwrap().received.len(), 0);
        net.run_until(SimTime::from_secs(6));
        assert_eq!(net.node(a).unwrap().received.len(), 1);
    }

    #[test]
    fn crash_prunes_link_clocks() {
        let mut net = fixed_net(1);
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        let c = net.add_node(move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(1));
        // a<->b and a<->c exchanged messages: 4 directed clocks tracked.
        assert_eq!(net.tracked_link_clocks(), 4);
        let a_capacity = net.link_clock_capacity(a);
        let b_capacity = net.link_clock_capacity(b);
        assert!(a_capacity >= 2 && b_capacity >= 1);
        net.crash(b);
        net.run_until(SimTime::from_secs(2));
        // Everything involving b is gone; a<->c remains.
        assert_eq!(net.tracked_link_clocks(), 2);
        // Pruning clears in place: neither the crashed sender's slot nor the
        // slots it was removed from were reallocated.
        assert_eq!(
            net.link_clock_capacity(b),
            b_capacity,
            "the crashed sender's clock vector is cleared, not replaced"
        );
        assert_eq!(net.link_clock_capacity(a), a_capacity);
        // Senders that have not yet detected the failure keep relaying to
        // the dead peer; those sends must not resurrect the pruned clocks.
        net.invoke(a, |_p, ctx| ctx.send(b, Ping(9)));
        net.run_until(SimTime::from_secs(3));
        assert_eq!(
            net.tracked_link_clocks(),
            2,
            "sends to a dead peer leave no clock behind"
        );
        net.crash(a);
        net.crash(c);
        net.run_until(SimTime::from_secs(4));
        assert_eq!(net.tracked_link_clocks(), 0);
    }

    #[test]
    fn connecting_to_dead_peer_reports_link_down() {
        let mut net = fixed_net(1);
        let a = net.add_node(|_| Pinger::new(None));
        net.run_until(SimTime::from_millis(1));
        net.crash(a);
        net.run_until(SimTime::from_millis(2));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(2));
        assert_eq!(net.node(b).unwrap().link_down, vec![a]);
    }

    /// A latency model whose `typical` falls back to the default (sampling)
    /// implementation — the case where drawing reference latencies from the
    /// master RNG would perturb the seeds of nodes added afterwards.
    struct JitterLatency;
    impl LatencyModel for JitterLatency {
        fn sample(&self, _src: NodeId, _dst: NodeId, rng: &mut SmallRng) -> SimDuration {
            SimDuration::from_micros(rng.gen_range(100..=10_000))
        }
    }

    #[test]
    fn typical_latency_does_not_perturb_node_seeds() {
        let run = |probe_reference_latency: bool| {
            let mut net: Network<Pinger> =
                Network::new(NetworkConfig::default(), Box::new(JitterLatency));
            let a = net.add_node(|_| Pinger::new(None));
            if probe_reference_latency {
                // Draw a pile of reference latencies between adding nodes.
                for _ in 0..17 {
                    net.typical_latency(a, NodeId(99));
                }
            }
            let _b = net.add_node(move |_| Pinger::new(Some(a)));
            net.run_until(SimTime::from_secs(1));
            net.node(a).unwrap().received[0].2
        };
        assert_eq!(
            run(false),
            run(true),
            "reference-latency queries must not reorder node seeds"
        );
    }

    #[test]
    fn schedulers_run_identically() {
        let run = |scheduler: SchedulerKind| {
            let mut net: Network<Pinger> = Network::new(
                NetworkConfig {
                    scheduler,
                    ..Default::default()
                },
                Box::new(crate::latency::ClusterLatency::default()),
            );
            let a = net.add_node(|_| Pinger::new(None));
            let b = net.add_node(move |_| Pinger::new(Some(a)));
            let c = net.add_node(move |_| Pinger::new(Some(a)));
            net.run_until(SimTime::from_millis(500));
            net.crash(b);
            net.run_until(SimTime::from_secs(2));
            (
                net.stats().clone(),
                net.node(a).unwrap().received.clone(),
                net.node(c).unwrap().received.clone(),
            )
        };
        let (wheel_stats, wheel_a, wheel_c) = run(SchedulerKind::TimingWheel);
        let (heap_stats, heap_a, heap_c) = run(SchedulerKind::BinaryHeap);
        assert_eq!(wheel_stats.events_processed, heap_stats.events_processed);
        assert_eq!(
            wheel_stats.messages_delivered,
            heap_stats.messages_delivered
        );
        assert_eq!(
            format!("{wheel_a:?}{wheel_c:?}"),
            format!("{heap_a:?}{heap_c:?}")
        );
    }

    #[test]
    fn bernoulli_loss_is_counted_separately_from_drops() {
        use crate::faults::{FaultConfig, LinkFaults};
        let run = |loss_rate: f64| {
            let mut net: Network<Pinger> = Network::new(
                NetworkConfig {
                    faults: FaultConfig {
                        link: LinkFaults {
                            loss_rate,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                    ..Default::default()
                },
                Box::new(FixedLatency::new(SimDuration::from_millis(1))),
            );
            let a = net.add_node(|_| Pinger::new(None));
            let b = net.add_node(|_| Pinger::new(None));
            net.run_until(SimTime::from_millis(1));
            net.invoke(b, |_p, ctx| {
                for _ in 0..200u8 {
                    // Ping(0) draws no reply from the receiver, so exactly
                    // 200 messages cross the wire.
                    ctx.send(a, Ping(0));
                }
            });
            net.run_until(SimTime::from_secs(1));
            (net.stats().clone(), net.node(a).unwrap().received.len())
        };
        let (stats, received) = run(0.2);
        assert!(
            stats.messages_lost_to_faults > 0,
            "20% loss over 200 sends must lose something"
        );
        assert_eq!(
            stats.messages_dropped, 0,
            "fault losses are not dead-destination drops"
        );
        assert_eq!(stats.messages_cut_by_partition, 0);
        assert_eq!(
            stats.messages_delivered + stats.messages_lost_to_faults,
            stats.messages_sent,
            "every sent message is either delivered or lost"
        );
        assert_eq!(received as u64, stats.messages_delivered);
        // Deterministic: the same seed reproduces the exact loss pattern.
        let (again, _) = run(0.2);
        assert_eq!(stats.messages_lost_to_faults, again.messages_lost_to_faults);
        assert_eq!(stats.events_processed, again.events_processed);
    }

    /// An *active but harmless* fault layer (zero loss, empty-island
    /// partition) must be bit-identical to no fault layer at all: the layer
    /// takes no draws and shifts no timestamps.
    #[test]
    fn harmless_fault_layer_is_bit_identical_to_none() {
        use crate::faults::{FaultConfig, PartitionMode, PartitionSpec};
        let run = |faults: FaultConfig| {
            let mut net: Network<Pinger> = Network::new(
                NetworkConfig {
                    faults,
                    ..Default::default()
                },
                Box::new(crate::latency::ClusterLatency::default()),
            );
            let a = net.add_node(|_| Pinger::new(None));
            let _b = net.add_node(move |_| Pinger::new(Some(a)));
            let _c = net.add_node(move |_| Pinger::new(Some(a)));
            net.run_until(SimTime::from_secs(1));
            format!(
                "{:?}{:?}",
                net.node(a).unwrap().received,
                net.stats().events_processed
            )
        };
        let empty_island = FaultConfig {
            partitions: vec![PartitionSpec::new(
                Vec::new(),
                SimTime::ZERO,
                SimTime::from_secs(10),
                PartitionMode::Drop,
            )],
            ..Default::default()
        };
        assert_eq!(run(FaultConfig::default()), run(empty_island));
    }

    #[test]
    fn partition_blackholes_and_heals() {
        use crate::faults::{FaultConfig, PartitionMode, PartitionSpec};
        let island_node = NodeId(1);
        let mut net: Network<Pinger> = Network::new(
            NetworkConfig {
                faults: FaultConfig {
                    partitions: vec![PartitionSpec::new(
                        vec![island_node],
                        SimTime::from_secs(2),
                        SimTime::from_secs(4),
                        PartitionMode::Drop,
                    )],
                    ..Default::default()
                },
                ..Default::default()
            },
            Box::new(FixedLatency::new(SimDuration::from_millis(1))),
        );
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(|_| Pinger::new(None));
        assert_eq!(b, island_node);
        net.run_until(SimTime::from_secs(1));
        // Before the window: delivered. (Ping values != 1 draw no reply.)
        net.invoke(a, |_p, ctx| ctx.send(b, Ping(0)));
        net.run_until(SimTime::from_secs(3));
        assert_eq!(net.node(b).unwrap().received.len(), 1);
        // Inside the window: cross-cut traffic is cut, both directions.
        net.invoke(a, |_p, ctx| ctx.send(b, Ping(2)));
        net.invoke(b, |_p, ctx| ctx.send(a, Ping(3)));
        net.run_until(SimTime::from_secs(5));
        assert_eq!(net.node(b).unwrap().received.len(), 1);
        assert_eq!(net.node(a).unwrap().received.len(), 0);
        assert_eq!(net.stats().messages_cut_by_partition, 2);
        assert_eq!(net.stats().messages_lost_to_faults, 0);
        // After heal: traffic flows again.
        net.invoke(a, |_p, ctx| ctx.send(b, Ping(4)));
        net.run_until(SimTime::from_secs(6));
        assert_eq!(net.node(b).unwrap().received.len(), 2);
        // No connections were torn down by the partition: the model is an
        // outage shorter than the transport time-out.
        assert!(net.node(a).unwrap().link_down.is_empty());
        assert!(net.node(b).unwrap().link_down.is_empty());
    }

    #[test]
    fn delaying_partition_holds_traffic_until_heal() {
        use crate::faults::{FaultConfig, PartitionMode, PartitionSpec};
        let heal = SimTime::from_secs(4);
        let mut net: Network<Pinger> = Network::new(
            NetworkConfig {
                faults: FaultConfig {
                    partitions: vec![PartitionSpec::new(
                        vec![NodeId(1)],
                        SimTime::from_secs(2),
                        heal,
                        PartitionMode::Delay,
                    )],
                    ..Default::default()
                },
                ..Default::default()
            },
            Box::new(FixedLatency::new(SimDuration::from_millis(1))),
        );
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(|_| Pinger::new(None));
        net.run_until(SimTime::from_secs(3));
        net.invoke(a, |_p, ctx| ctx.send(b, Ping(9)));
        net.run_until(SimTime::from_secs(10));
        let received = &net.node(b).unwrap().received;
        assert_eq!(received.len(), 1);
        assert_eq!(
            received[0].2, heal,
            "held back until the heal instant (latency charged from the send)"
        );
        assert_eq!(net.stats().messages_cut_by_partition, 0);
    }

    #[test]
    fn connecting_across_an_active_cut_reports_link_down() {
        use crate::faults::{FaultConfig, PartitionMode, PartitionSpec};
        let mut net: Network<Pinger> = Network::new(
            NetworkConfig {
                faults: FaultConfig {
                    partitions: vec![PartitionSpec::new(
                        vec![NodeId(1)],
                        SimTime::ZERO,
                        SimTime::from_secs(60),
                        PartitionMode::Drop,
                    )],
                    ..Default::default()
                },
                ..Default::default()
            },
            Box::new(FixedLatency::new(SimDuration::from_millis(1))),
        );
        let a = net.add_node(|_| Pinger::new(None));
        let b = net.add_node(move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(2));
        assert_eq!(
            net.node(b).unwrap().link_down,
            vec![a],
            "the blackholed handshake times out like a dead-peer connect"
        );
    }

    #[test]
    fn event_trace_capture() {
        let mut net: Network<Pinger> = Network::new(
            NetworkConfig {
                trace_events: true,
                ..Default::default()
            },
            Box::new(FixedLatency::new(SimDuration::from_millis(1))),
        );
        let a = net.add_node(|_| Pinger::new(None));
        let _b = net.add_node(move |_| Pinger::new(Some(a)));
        net.run_until(SimTime::from_secs(1));
        let trace = net.take_event_trace();
        let pushes = trace
            .iter()
            .filter(|op| matches!(op, TraceOp::Push(_)))
            .count();
        let pops = trace.iter().filter(|op| matches!(op, TraceOp::Pop)).count();
        assert_eq!(pops as u64, net.stats().events_processed);
        assert!(pushes >= pops);
    }
}
