//! HyParView wire messages.

use brisa_simnet::{NodeId, WireSize};
use serde::{Deserialize, Serialize};

/// Fixed per-message overhead (type tag + framing) charged for every
/// HyParView control message.
pub const HPV_HEADER_BYTES: usize = 8;

/// Messages exchanged by the HyParView membership protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HpvMsg {
    /// A new node announces itself to its contact node.
    Join,
    /// The contact node propagates the join through the overlay as a random
    /// walk of length `ttl`.
    ForwardJoin {
        /// The joining node.
        new_node: NodeId,
        /// Remaining hops of the random walk.
        ttl: u8,
    },
    /// Request to establish a (bidirectional) neighbor link.
    Neighbor {
        /// High-priority requests (sent by nodes whose active view is empty)
        /// must be accepted.
        high_priority: bool,
    },
    /// Answer to a [`HpvMsg::Neighbor`] request.
    NeighborReply {
        /// Whether the requester was added to the replier's active view.
        accepted: bool,
    },
    /// The sender removed the receiver from its active view.
    Disconnect,
    /// Passive-view shuffle random walk.
    Shuffle {
        /// Node that initiated the shuffle (replies go directly to it).
        origin: NodeId,
        /// Sample of the origin's views (plus the origin itself).
        nodes: Vec<NodeId>,
        /// Remaining hops of the random walk.
        ttl: u8,
    },
    /// Direct answer to a shuffle, carrying a sample of the replier's
    /// passive view.
    ShuffleReply {
        /// The sample.
        nodes: Vec<NodeId>,
    },
    /// Keep-alive probe; also used to measure round-trip times, which BRISA's
    /// delay-aware parent selection consumes.
    KeepAlive {
        /// Correlates the probe with its acknowledgement.
        nonce: u64,
    },
    /// Keep-alive acknowledgement.
    KeepAliveAck {
        /// Echoed nonce.
        nonce: u64,
    },
}

impl WireSize for HpvMsg {
    fn wire_size(&self) -> usize {
        let body = match self {
            HpvMsg::Join => 0,
            HpvMsg::ForwardJoin { .. } => NodeId::WIRE_SIZE + 1,
            HpvMsg::Neighbor { .. } => 1,
            HpvMsg::NeighborReply { .. } => 1,
            HpvMsg::Disconnect => 0,
            // Node lists carry an explicit u16 count so a decoder does not
            // have to infer the length from the frame size (matches
            // `runtime::wire` byte for byte).
            HpvMsg::Shuffle { nodes, .. } => {
                NodeId::WIRE_SIZE + 1 + 2 + nodes.len() * NodeId::WIRE_SIZE
            }
            HpvMsg::ShuffleReply { nodes } => 2 + nodes.len() * NodeId::WIRE_SIZE,
            HpvMsg::KeepAlive { .. } | HpvMsg::KeepAliveAck { .. } => 8,
        };
        HPV_HEADER_BYTES + body
    }
}

/// Effects produced by the HyParView state machine.
///
/// The state machine is sans-IO: handling an input returns a list of these
/// effects, which the embedding protocol stack translates into simulator
/// commands (or, in a real deployment, into socket operations).
#[derive(Debug, Clone, PartialEq)]
pub enum HpvOut {
    /// Send `msg` to `to`.
    Send {
        /// Destination.
        to: NodeId,
        /// Message to send.
        msg: HpvMsg,
    },
    /// Open a monitored connection to `peer` (failure detection).
    OpenConnection(NodeId),
    /// Close the monitored connection to `peer`.
    CloseConnection(NodeId),
    /// `peer` entered the active view.
    NeighborUp(NodeId),
    /// `peer` left the active view.
    NeighborDown(NodeId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_content() {
        assert_eq!(HpvMsg::Join.wire_size(), HPV_HEADER_BYTES);
        assert_eq!(
            HpvMsg::ForwardJoin {
                new_node: NodeId(1),
                ttl: 3
            }
            .wire_size(),
            HPV_HEADER_BYTES + 7
        );
        let small = HpvMsg::Shuffle {
            origin: NodeId(0),
            nodes: vec![NodeId(1)],
            ttl: 2,
        };
        let big = HpvMsg::Shuffle {
            origin: NodeId(0),
            nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
            ttl: 2,
        };
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(
            HpvMsg::KeepAlive { nonce: 1 }.wire_size(),
            HpvMsg::KeepAliveAck { nonce: 1 }.wire_size()
        );
    }
}
