//! HyParView configuration.

use brisa_simnet::SimDuration;
use serde::{Deserialize, Serialize};

/// Configuration parameters of the HyParView membership protocol.
///
/// Defaults follow the values used throughout the BRISA evaluation: a small
/// active view (the paper sweeps 4–10), a larger passive view, an expansion
/// factor of 2, and the random-walk lengths of the original HyParView paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyParViewConfig {
    /// Target size of the active view (the node's neighbors).
    pub active_size: usize,
    /// Size of the passive view (the reservoir of replacement nodes).
    pub passive_size: usize,
    /// The active view may grow up to `active_size * expansion_factor`
    /// before evictions are triggered by new additions. Evictions of entries
    /// above `active_size` do not cause replacements (Section II-A of the
    /// BRISA paper). The evaluation uses a factor of 2 except for the sample
    /// trees of Figure 8 which use 1.
    pub expansion_factor: usize,
    /// Active Random Walk Length for `ForwardJoin` propagation.
    pub arwl: u8,
    /// Passive Random Walk Length: when the remaining TTL of a
    /// `ForwardJoin` equals this value the new node is also inserted into
    /// the passive view.
    pub prwl: u8,
    /// Period of the proactive passive-view shuffle.
    pub shuffle_period: SimDuration,
    /// Number of active-view entries included in a shuffle message.
    pub shuffle_active: usize,
    /// Number of passive-view entries included in a shuffle message.
    pub shuffle_passive: usize,
    /// TTL of shuffle random walks.
    pub shuffle_ttl: u8,
    /// Period of keep-alive probes towards active-view members. Keep-alives
    /// double as RTT measurements for BRISA's delay-aware parent selection.
    pub keepalive_period: SimDuration,
}

impl Default for HyParViewConfig {
    fn default() -> Self {
        HyParViewConfig {
            active_size: 4,
            passive_size: 30,
            expansion_factor: 2,
            arwl: 6,
            prwl: 3,
            shuffle_period: SimDuration::from_secs(10),
            shuffle_active: 3,
            shuffle_passive: 4,
            shuffle_ttl: 4,
            keepalive_period: SimDuration::from_secs(2),
        }
    }
}

impl HyParViewConfig {
    /// Convenience constructor setting the active view size (the parameter
    /// the BRISA evaluation sweeps) and keeping defaults for the rest.
    pub fn with_active_size(active_size: usize) -> Self {
        HyParViewConfig {
            active_size,
            ..Default::default()
        }
    }

    /// Sets the expansion factor, returning the modified configuration.
    pub fn expansion_factor(mut self, f: usize) -> Self {
        self.expansion_factor = f;
        self
    }

    /// Maximum size the active view may reach before additions force an
    /// eviction.
    pub fn max_active(&self) -> usize {
        self.active_size * self.expansion_factor.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = HyParViewConfig::default();
        assert_eq!(c.active_size, 4);
        assert_eq!(c.expansion_factor, 2);
        assert_eq!(c.max_active(), 8);
    }

    #[test]
    fn builders() {
        let c = HyParViewConfig::with_active_size(8).expansion_factor(1);
        assert_eq!(c.active_size, 8);
        assert_eq!(c.max_active(), 8);
        let c0 = HyParViewConfig::with_active_size(5).expansion_factor(0);
        assert_eq!(c0.max_active(), 5, "expansion factor 0 behaves like 1");
    }
}
