//! HyParView: a reactive peer sampling service.
//!
//! HyParView (Leitão, Pereira, Rodrigues, DSN 2007) maintains two views at
//! each node: a small *active view* of neighbors, connected through
//! monitored (TCP) connections and kept symmetric, and a larger *passive
//! view* refreshed by periodic shuffles and used as a reservoir of
//! replacement nodes. The active view only changes reactively — upon
//! failures or joins — which is the stability property BRISA builds on.
//!
//! This implementation is a sans-IO state machine: every input returns a
//! list of [`HpvOut`] effects that the embedding protocol stack executes.
//! It includes the *expansion factor* extension described in Section II-A of
//! the BRISA paper: the active view may grow up to
//! `active_size * expansion_factor` before additions force evictions, and
//! evictions in that band do not trigger replacements, which avoids the
//! chain reactions otherwise caused by bootstrap join storms.

mod config;
mod messages;

pub use config::HyParViewConfig;
pub use messages::{HpvMsg, HpvOut, HPV_HEADER_BYTES};

use crate::view::BoundedView;
use brisa_simnet::{NodeId, SimDuration, SimTime};
use rand::rngs::SmallRng;
use std::collections::{HashMap, HashSet};

/// Counters describing membership activity, used by the evaluation harness.
#[derive(Debug, Clone, Default)]
pub struct HpvStats {
    /// Joins this node served as contact or forwarded.
    pub joins_seen: u64,
    /// Active-view entries evicted to make room for new ones.
    pub evictions: u64,
    /// Passive-view entries promoted into the active view.
    pub promotions: u64,
    /// Shuffles initiated.
    pub shuffles_started: u64,
    /// Neighbor requests rejected by this node.
    pub neighbor_rejections: u64,
    /// Keep-alive probes rejected (with a `Disconnect`) because the prober
    /// was not in the active view — each one is a half-open link healed.
    pub half_open_rejections: u64,
}

/// The HyParView membership state machine for one node.
#[derive(Debug)]
pub struct HyParView {
    me: NodeId,
    cfg: HyParViewConfig,
    active: BoundedView,
    passive: BoundedView,
    /// Round-trip times measured through keep-alive probes.
    rtt: HashMap<NodeId, SimDuration>,
    /// When each current neighbor entered the active view.
    neighbor_since: HashMap<NodeId, SimTime>,
    /// Outstanding keep-alive probes: nonce -> (peer, send time).
    pending_probes: HashMap<u64, (NodeId, SimTime)>,
    /// Passive nodes we have asked to become neighbors and are waiting on.
    pending_neighbor: HashSet<NodeId>,
    next_nonce: u64,
    last_shuffle_sample: Vec<NodeId>,
    stats: HpvStats,
    /// Observability handles (no-ops unless a registry is attached).
    tel: HpvTel,
}

/// Pre-resolved observability handles for the membership layer. All
/// no-ops (the [`Default`]) until [`HyParView::set_telemetry`] attaches
/// an enabled registry; strictly out-of-band either way.
#[derive(Debug, Default)]
struct HpvTel {
    tel: brisa_telemetry::Telemetry,
    shuffles: brisa_telemetry::Counter,
    active_view: brisa_telemetry::Histo,
    passive_view: brisa_telemetry::Histo,
}

impl HyParView {
    /// Creates the state machine for node `me`.
    pub fn new(me: NodeId, cfg: HyParViewConfig) -> Self {
        let active = BoundedView::new(cfg.max_active());
        let passive = BoundedView::new(cfg.passive_size);
        HyParView {
            me,
            cfg,
            active,
            passive,
            rtt: HashMap::new(),
            neighbor_since: HashMap::new(),
            pending_probes: HashMap::new(),
            pending_neighbor: HashSet::new(),
            next_nonce: 0,
            last_shuffle_sample: Vec::new(),
            stats: HpvStats::default(),
            tel: HpvTel::default(),
        }
    }

    /// Attaches an observability registry, resolving the handles the
    /// shuffle path records into. Strictly out-of-band: telemetry never
    /// influences view management.
    pub fn set_telemetry(&mut self, tel: &brisa_telemetry::Telemetry) {
        self.tel = HpvTel {
            shuffles: tel.counter("hpv.shuffles"),
            active_view: tel.histogram("hpv.active_view_size"),
            passive_view: tel.histogram("hpv.passive_view_size"),
            tel: tel.clone(),
        };
    }

    /// Records one shuffle-cadence observation (counter, view-size
    /// histograms and a flight-recorder event). The embedding stack calls
    /// this from its shuffle timer, where the current time is known.
    pub fn note_shuffle(&mut self, now: SimTime) {
        let active = self.active.len() as u64;
        let passive = self.passive.len() as u64;
        self.tel.shuffles.inc();
        self.tel.active_view.record(active);
        self.tel.passive_view.record(passive);
        self.tel.tel.event(
            now.as_micros(),
            self.me.0,
            brisa_telemetry::EventKind::ShuffleTick,
            active,
            passive,
        );
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The protocol configuration.
    pub fn config(&self) -> &HyParViewConfig {
        &self.cfg
    }

    /// The current active view (this node's neighbors).
    pub fn active_view(&self) -> &[NodeId] {
        self.active.as_slice()
    }

    /// The current passive view.
    pub fn passive_view(&self) -> &[NodeId] {
        self.passive.as_slice()
    }

    /// True if `peer` is in the active view.
    pub fn is_neighbor(&self, peer: NodeId) -> bool {
        self.active.contains(peer)
    }

    /// Last measured round-trip time to `peer`, if a keep-alive probe has
    /// completed.
    pub fn rtt_to(&self, peer: NodeId) -> Option<SimDuration> {
        self.rtt.get(&peer).copied()
    }

    /// Time at which `peer` became a neighbor, if it currently is one.
    pub fn neighbor_since(&self, peer: NodeId) -> Option<SimTime> {
        self.neighbor_since.get(&peer).copied()
    }

    /// Rough memory footprint of this membership state machine in bytes
    /// (inline struct plus tracked heap), the HyParView term of the
    /// scale-mode bytes-per-node accounting.
    pub fn approx_bytes(&self) -> usize {
        // Rounded-up hash-map entry cost including control-byte overhead.
        const MAP_ENTRY: usize = 48;
        std::mem::size_of::<Self>()
            + (self.active.len() + self.passive.len() + self.last_shuffle_sample.len())
                * std::mem::size_of::<NodeId>()
            + (self.rtt.len()
                + self.neighbor_since.len()
                + self.pending_probes.len()
                + self.pending_neighbor.len())
                * MAP_ENTRY
    }

    /// Membership activity counters.
    pub fn stats(&self) -> &HpvStats {
        &self.stats
    }

    /// Joins the overlay through `contact`. The contact is optimistically
    /// added to the active view; the `Join` message triggers `ForwardJoin`
    /// random walks that advertise this node across the overlay.
    pub fn join(&mut self, now: SimTime, contact: NodeId) -> Vec<HpvOut> {
        let mut out = Vec::new();
        self.add_active(contact, now, &mut out);
        out.push(HpvOut::Send {
            to: contact,
            msg: HpvMsg::Join,
        });
        out
    }

    /// Handles a protocol message from `from`.
    pub fn handle(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: HpvMsg,
        rng: &mut SmallRng,
    ) -> Vec<HpvOut> {
        let mut out = Vec::new();
        match msg {
            HpvMsg::Join => self.on_join(now, from, &mut out),
            HpvMsg::ForwardJoin { new_node, ttl } => {
                self.on_forward_join(now, from, new_node, ttl, rng, &mut out)
            }
            HpvMsg::Neighbor { high_priority } => {
                self.on_neighbor(now, from, high_priority, &mut out)
            }
            HpvMsg::NeighborReply { accepted } => {
                self.on_neighbor_reply(now, from, accepted, rng, &mut out)
            }
            HpvMsg::Disconnect => self.on_disconnect(now, from, rng, &mut out),
            HpvMsg::Shuffle { origin, nodes, ttl } => {
                self.on_shuffle(from, origin, nodes, ttl, rng, &mut out)
            }
            HpvMsg::ShuffleReply { nodes } => {
                let sent = std::mem::take(&mut self.last_shuffle_sample);
                self.integrate_passive(&nodes, &sent, rng);
            }
            HpvMsg::KeepAlive { nonce } => {
                if self.active.contains(from) {
                    out.push(HpvOut::Send {
                        to: from,
                        msg: HpvMsg::KeepAliveAck { nonce },
                    });
                } else {
                    // A probe from a node that is not a neighbor reveals a
                    // half-open link: the prober holds us in its active view
                    // but we dropped it (an eviction whose Disconnect it
                    // re-added us over, a crossed handshake). Acking would
                    // keep the prober convinced the link is live even though
                    // we will never eager-push to it — with an unlucky view
                    // a node can end up *fully* half-open and permanently
                    // deaf to the stream (observed at million-node scale:
                    // ~1 node in 10⁵ bootstraps into exactly that state).
                    // Reply Disconnect so the prober drops the dead edge and
                    // promotes a replacement from its passive view.
                    self.stats.half_open_rejections += 1;
                    out.push(HpvOut::Send {
                        to: from,
                        msg: HpvMsg::Disconnect,
                    });
                }
            }
            HpvMsg::KeepAliveAck { nonce } => {
                if let Some((peer, sent_at)) = self.pending_probes.remove(&nonce) {
                    if peer == from {
                        self.rtt.insert(peer, now.saturating_since(sent_at));
                    }
                }
            }
        }
        out
    }

    /// Reacts to connection-level failure detection for `peer`: the peer is
    /// dropped from both views and, if the active view fell below its target
    /// size, a passive node is promoted (reactive repair).
    pub fn link_down(&mut self, now: SimTime, peer: NodeId, rng: &mut SmallRng) -> Vec<HpvOut> {
        let mut out = Vec::new();
        self.passive.remove(peer);
        self.pending_neighbor.remove(&peer);
        if self.active.contains(peer) {
            self.remove_active(peer, false, &mut out);
            self.maybe_promote(now, rng, &mut out);
        }
        out
    }

    /// Periodic keep-alive tick: probes every active-view member. The
    /// resulting acknowledgements update [`HyParView::rtt_to`].
    pub fn keepalive_tick(&mut self, now: SimTime) -> Vec<HpvOut> {
        let mut out = Vec::new();
        // Drop probes that never got an acknowledgement (the probe or its
        // ack was lost on the wire, or the peer is gone): without this the
        // table grows by one entry per unanswered probe for the lifetime of
        // the node. Three periods is far beyond any plausible RTT.
        let stale_after = self.cfg.keepalive_period * 3;
        self.pending_probes
            .retain(|_, (_, sent_at)| now.saturating_since(*sent_at) < stale_after);
        let members: Vec<NodeId> = self.active.iter().collect();
        for peer in members {
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            self.pending_probes.insert(nonce, (peer, now));
            out.push(HpvOut::Send {
                to: peer,
                msg: HpvMsg::KeepAlive { nonce },
            });
        }
        out
    }

    /// Periodic passive-view shuffle tick.
    pub fn shuffle_tick(&mut self, rng: &mut SmallRng) -> Vec<HpvOut> {
        let mut out = Vec::new();
        let Some(target) = self.active.random(rng) else {
            return out;
        };
        let mut sample = vec![self.me];
        sample.extend(self.active.sample(rng, self.cfg.shuffle_active));
        sample.extend(self.passive.sample(rng, self.cfg.shuffle_passive));
        sample.dedup();
        self.last_shuffle_sample = sample.clone();
        self.stats.shuffles_started += 1;
        out.push(HpvOut::Send {
            to: target,
            msg: HpvMsg::Shuffle {
                origin: self.me,
                nodes: sample,
                ttl: self.cfg.shuffle_ttl,
            },
        });
        out
    }

    // ------------------------------------------------------------------
    // Message handlers
    // ------------------------------------------------------------------

    fn on_join(&mut self, now: SimTime, new_node: NodeId, out: &mut Vec<HpvOut>) {
        self.stats.joins_seen += 1;
        self.add_active(new_node, now, out);
        let others: Vec<NodeId> = self.active.iter().filter(|&n| n != new_node).collect();
        for n in others {
            out.push(HpvOut::Send {
                to: n,
                msg: HpvMsg::ForwardJoin {
                    new_node,
                    ttl: self.cfg.arwl,
                },
            });
        }
    }

    fn on_forward_join(
        &mut self,
        now: SimTime,
        sender: NodeId,
        new_node: NodeId,
        ttl: u8,
        rng: &mut SmallRng,
        out: &mut Vec<HpvOut>,
    ) {
        self.stats.joins_seen += 1;
        if new_node == self.me {
            return;
        }
        if ttl == 0 || self.active.len() <= 1 {
            if !self.active.contains(new_node) {
                self.add_active(new_node, now, out);
                out.push(HpvOut::Send {
                    to: new_node,
                    msg: HpvMsg::Neighbor {
                        high_priority: true,
                    },
                });
            }
            return;
        }
        if ttl == self.cfg.prwl {
            self.add_passive(new_node, rng);
        }
        let exclude = [sender, new_node, self.me];
        match self.active.random_excluding(rng, &exclude) {
            Some(next) => out.push(HpvOut::Send {
                to: next,
                msg: HpvMsg::ForwardJoin {
                    new_node,
                    ttl: ttl - 1,
                },
            }),
            None => {
                if !self.active.contains(new_node) {
                    self.add_active(new_node, now, out);
                    out.push(HpvOut::Send {
                        to: new_node,
                        msg: HpvMsg::Neighbor {
                            high_priority: true,
                        },
                    });
                }
            }
        }
    }

    fn on_neighbor(
        &mut self,
        now: SimTime,
        from: NodeId,
        high_priority: bool,
        out: &mut Vec<HpvOut>,
    ) {
        if high_priority || self.active.len() < self.cfg.max_active() {
            self.add_active(from, now, out);
            out.push(HpvOut::Send {
                to: from,
                msg: HpvMsg::NeighborReply { accepted: true },
            });
        } else {
            self.stats.neighbor_rejections += 1;
            out.push(HpvOut::Send {
                to: from,
                msg: HpvMsg::NeighborReply { accepted: false },
            });
        }
    }

    fn on_neighbor_reply(
        &mut self,
        now: SimTime,
        from: NodeId,
        accepted: bool,
        rng: &mut SmallRng,
        out: &mut Vec<HpvOut>,
    ) {
        self.pending_neighbor.remove(&from);
        if accepted {
            self.add_active(from, now, out);
        } else {
            // The candidate refused: put it back in the passive view and try
            // another one (not the same candidate again) if we are still
            // short of neighbors.
            self.add_passive(from, rng);
            self.maybe_promote_excluding(now, rng, &[from], out);
        }
    }

    fn on_disconnect(
        &mut self,
        now: SimTime,
        from: NodeId,
        rng: &mut SmallRng,
        out: &mut Vec<HpvOut>,
    ) {
        if self.active.contains(from) {
            self.remove_active(from, true, out);
            // Only replace if we fell below the target size: evictions in the
            // expansion band do not cause replacements (BRISA §II-A).
            self.maybe_promote(now, rng, out);
        }
    }

    fn on_shuffle(
        &mut self,
        sender: NodeId,
        origin: NodeId,
        nodes: Vec<NodeId>,
        ttl: u8,
        rng: &mut SmallRng,
        out: &mut Vec<HpvOut>,
    ) {
        let ttl = ttl.saturating_sub(1);
        if ttl > 0 && self.active.len() > 1 {
            let exclude = [sender, origin, self.me];
            if let Some(next) = self.active.random_excluding(rng, &exclude) {
                out.push(HpvOut::Send {
                    to: next,
                    msg: HpvMsg::Shuffle { origin, nodes, ttl },
                });
                return;
            }
        }
        // End of the walk: answer the origin with a sample of our passive
        // view and integrate the received sample.
        if origin != self.me {
            let reply = self.passive.sample(rng, nodes.len().max(1));
            out.push(HpvOut::Send {
                to: origin,
                msg: HpvMsg::ShuffleReply { nodes: reply },
            });
        }
        self.integrate_passive(&nodes, &[], rng);
    }

    // ------------------------------------------------------------------
    // View maintenance
    // ------------------------------------------------------------------

    fn add_active(&mut self, peer: NodeId, now: SimTime, out: &mut Vec<HpvOut>) -> bool {
        if peer == self.me || self.active.contains(peer) {
            return false;
        }
        if self.active.len() >= self.cfg.max_active() {
            // Drop a member to make room (it is moved to the passive view and
            // informed through a Disconnect). The position is derived from
            // the eviction counter, which spreads evictions across the view
            // deterministically without needing an RNG here.
            let idx = (self.stats.evictions as usize) % self.active.len();
            let victim = self.active.as_slice()[idx];
            self.stats.evictions += 1;
            out.push(HpvOut::Send {
                to: victim,
                msg: HpvMsg::Disconnect,
            });
            self.remove_active(victim, true, out);
        }
        self.passive.remove(peer);
        self.active.push_unbounded(peer);
        self.neighbor_since.insert(peer, now);
        out.push(HpvOut::OpenConnection(peer));
        out.push(HpvOut::NeighborUp(peer));
        true
    }

    fn remove_active(&mut self, peer: NodeId, to_passive: bool, out: &mut Vec<HpvOut>) {
        if self.active.remove(peer) {
            self.neighbor_since.remove(&peer);
            self.rtt.remove(&peer);
            out.push(HpvOut::CloseConnection(peer));
            out.push(HpvOut::NeighborDown(peer));
            if to_passive {
                self.passive.push_unique(peer);
            }
        }
    }

    fn add_passive(&mut self, peer: NodeId, rng: &mut SmallRng) {
        if peer == self.me || self.active.contains(peer) || self.passive.contains(peer) {
            return;
        }
        if self.passive.is_full() {
            self.passive.drop_random(rng);
        }
        self.passive.push_unique(peer);
    }

    fn integrate_passive(&mut self, nodes: &[NodeId], sent: &[NodeId], rng: &mut SmallRng) {
        for &n in nodes {
            if n == self.me || self.active.contains(n) || self.passive.contains(n) {
                continue;
            }
            if self.passive.is_full() {
                // Prefer discarding entries we just sent to the peer.
                let dropped = sent
                    .iter()
                    .copied()
                    .find(|s| self.passive.contains(*s))
                    .map(|s| self.passive.remove(s))
                    .unwrap_or(false);
                if !dropped {
                    self.passive.drop_random(rng);
                }
            }
            self.passive.push_unique(n);
        }
    }

    /// Promotes a passive node if the active view is below its target size.
    fn maybe_promote(&mut self, now: SimTime, rng: &mut SmallRng, out: &mut Vec<HpvOut>) {
        self.maybe_promote_excluding(now, rng, &[], out);
    }

    /// As [`Self::maybe_promote`] but additionally excluding `extra`
    /// candidates (used to avoid immediately retrying a node that just
    /// rejected a neighbor request).
    fn maybe_promote_excluding(
        &mut self,
        _now: SimTime,
        rng: &mut SmallRng,
        extra: &[NodeId],
        out: &mut Vec<HpvOut>,
    ) {
        if self.active.len() >= self.cfg.active_size {
            return;
        }
        let mut pending: Vec<NodeId> = self.pending_neighbor.iter().copied().collect();
        pending.extend_from_slice(extra);
        let candidate = self.passive.random_excluding(rng, &pending);
        if let Some(candidate) = candidate {
            self.passive.remove(candidate);
            self.pending_neighbor.insert(candidate);
            self.stats.promotions += 1;
            let high_priority = self.active.is_empty();
            out.push(HpvOut::OpenConnection(candidate));
            out.push(HpvOut::Send {
                to: candidate,
                msg: HpvMsg::Neighbor { high_priority },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::{HashMap, VecDeque};

    /// A tiny in-memory harness that runs a set of HyParView instances to
    /// quiescence by delivering messages instantly. Connection-level events
    /// are ignored (no failures are injected unless a test does so by hand).
    struct Harness {
        nodes: HashMap<NodeId, HyParView>,
        rng: SmallRng,
        queue: VecDeque<(NodeId, NodeId, HpvMsg)>,
        now: SimTime,
    }

    impl Harness {
        fn new(n: u32, cfg: HyParViewConfig) -> Self {
            let mut nodes = HashMap::new();
            for i in 0..n {
                nodes.insert(NodeId(i), HyParView::new(NodeId(i), cfg.clone()));
            }
            Harness {
                nodes,
                rng: SmallRng::seed_from_u64(99),
                queue: VecDeque::new(),
                now: SimTime::ZERO,
            }
        }

        fn enqueue(&mut self, from: NodeId, outs: Vec<HpvOut>) {
            for o in outs {
                if let HpvOut::Send { to, msg } = o {
                    self.queue.push_back((from, to, msg));
                }
            }
        }

        fn join_all(&mut self) {
            // Node 0 is the seed; everyone else joins through it, mirroring
            // the bootstrap of the paper's experiments.
            let ids: Vec<NodeId> = (0..self.nodes.len() as u32).map(NodeId).collect();
            for &id in ids.iter().skip(1) {
                let outs = self.nodes.get_mut(&id).unwrap().join(self.now, NodeId(0));
                self.enqueue(id, outs);
                self.drain();
            }
        }

        fn drain(&mut self) {
            let mut steps = 0;
            while let Some((from, to, msg)) = self.queue.pop_front() {
                steps += 1;
                assert!(steps < 1_000_000, "harness did not quiesce");
                let outs = {
                    let node = self.nodes.get_mut(&to).unwrap();
                    node.handle(self.now, from, msg, &mut self.rng)
                };
                self.enqueue(to, outs);
            }
        }
    }

    #[test]
    fn two_node_join_is_symmetric() {
        let mut h = Harness::new(2, HyParViewConfig::default());
        h.join_all();
        assert_eq!(h.nodes[&NodeId(1)].active_view(), &[NodeId(0)]);
        assert_eq!(h.nodes[&NodeId(0)].active_view(), &[NodeId(1)]);
    }

    #[test]
    fn views_are_symmetric_and_bounded_after_bootstrap() {
        let cfg = HyParViewConfig::with_active_size(4);
        let n = 64;
        let mut h = Harness::new(n, cfg.clone());
        h.join_all();
        for (id, node) in &h.nodes {
            assert!(
                node.active_view().len() <= cfg.max_active(),
                "{id} active view exceeds the expansion bound"
            );
            assert!(!node.active_view().contains(id), "no self-loops");
            for peer in node.active_view() {
                assert!(
                    h.nodes[peer].is_neighbor(*id),
                    "link {id}<->{peer} is not symmetric"
                );
            }
        }
        // Every node (except possibly the seed) should have at least one neighbor.
        for (id, node) in &h.nodes {
            assert!(
                !node.active_view().is_empty(),
                "{id} has an empty active view"
            );
        }
    }

    #[test]
    fn overlay_is_connected_after_bootstrap() {
        let cfg = HyParViewConfig::with_active_size(4);
        let n = 128u32;
        let mut h = Harness::new(n, cfg);
        h.join_all();
        // BFS over the union of active views.
        let mut visited = vec![false; n as usize];
        let mut stack = vec![NodeId(0)];
        visited[0] = true;
        while let Some(cur) = stack.pop() {
            for &peer in h.nodes[&cur].active_view() {
                if !visited[peer.index()] {
                    visited[peer.index()] = true;
                    stack.push(peer);
                }
            }
        }
        assert!(visited.iter().all(|&v| v), "overlay must be connected");
    }

    #[test]
    fn passive_views_fill_up() {
        let cfg = HyParViewConfig::with_active_size(4);
        let mut h = Harness::new(64, cfg);
        h.join_all();
        // Run a few shuffle rounds.
        for _ in 0..5 {
            let ids: Vec<NodeId> = h.nodes.keys().copied().collect();
            for id in ids {
                let outs = {
                    let mut rng = SmallRng::seed_from_u64(id.0 as u64);
                    h.nodes.get_mut(&id).unwrap().shuffle_tick(&mut rng)
                };
                h.enqueue(id, outs);
                h.drain();
            }
        }
        let with_passive = h
            .nodes
            .values()
            .filter(|n| !n.passive_view().is_empty())
            .count();
        assert!(
            with_passive > 56,
            "most nodes should have non-empty passive views, got {with_passive}"
        );
        // Passive views never contain the node itself or active neighbors.
        for (id, node) in &h.nodes {
            for p in node.passive_view() {
                assert_ne!(p, id);
                assert!(!node.is_neighbor(*p));
            }
        }
    }

    #[test]
    fn link_down_promotes_replacement_from_passive() {
        let cfg = HyParViewConfig::with_active_size(2);
        let mut h = Harness::new(16, cfg);
        h.join_all();
        // Pick a node with a non-empty passive view and fail one neighbor.
        let id = h
            .nodes
            .values()
            .find(|n| !n.passive_view().is_empty() && !n.active_view().is_empty())
            .map(|n| n.id())
            .expect("some node has both views non-empty");
        let failed = h.nodes[&id].active_view()[0];
        let before = h.nodes[&id].active_view().len();
        let mut rng = SmallRng::seed_from_u64(3);
        let outs = h
            .nodes
            .get_mut(&id)
            .unwrap()
            .link_down(SimTime::from_secs(1), failed, &mut rng);
        assert!(!h.nodes[&id].is_neighbor(failed));
        // A Neighbor request to a passive candidate must have been issued
        // when the view dropped below target.
        let issued_neighbor = outs.iter().any(|o| {
            matches!(
                o,
                HpvOut::Send {
                    msg: HpvMsg::Neighbor { .. },
                    ..
                }
            )
        });
        if before <= h.nodes[&id].config().active_size {
            assert!(issued_neighbor, "expected a promotion attempt");
        }
        h.enqueue(id, outs);
        h.drain();
        assert!(
            !h.nodes[&id].active_view().is_empty(),
            "node should regain neighbors after repair"
        );
    }

    #[test]
    fn keepalive_measures_rtt() {
        let mut h = Harness::new(2, HyParViewConfig::default());
        h.join_all();
        let outs = h
            .nodes
            .get_mut(&NodeId(0))
            .unwrap()
            .keepalive_tick(SimTime::from_secs(1));
        // Manually deliver with a later "now" to simulate network delay.
        let mut replies = Vec::new();
        for o in outs {
            if let HpvOut::Send { to, msg } = o {
                let mut rng = SmallRng::seed_from_u64(1);
                let r = h.nodes.get_mut(&to).unwrap().handle(
                    SimTime::from_millis(1005),
                    NodeId(0),
                    msg,
                    &mut rng,
                );
                replies.extend(r.into_iter().map(|o| (to, o)));
            }
        }
        for (from, o) in replies {
            if let HpvOut::Send { to, msg } = o {
                assert_eq!(to, NodeId(0));
                let mut rng = SmallRng::seed_from_u64(2);
                h.nodes.get_mut(&NodeId(0)).unwrap().handle(
                    SimTime::from_millis(1010),
                    from,
                    msg,
                    &mut rng,
                );
            }
        }
        let rtt = h.nodes[&NodeId(0)].rtt_to(NodeId(1)).expect("rtt measured");
        assert_eq!(rtt, SimDuration::from_millis(10));
    }

    #[test]
    fn keepalive_from_non_neighbor_heals_the_half_open_link() {
        // A holds B in its active view, but B does not know A — the
        // half-open state that leaves A deaf to eager push. A's probe must
        // come back as a Disconnect, after which A drops the dead edge.
        let mut h = Harness::new(2, HyParViewConfig::default());
        let mut rng = SmallRng::seed_from_u64(7);
        let a = NodeId(0);
        let b = NodeId(1);
        // A adds B unilaterally (as an optimistic join/handshake would).
        let _ = h.nodes.get_mut(&a).unwrap().join(SimTime::ZERO, b);
        assert!(h.nodes[&a].active_view().contains(&b));
        assert!(!h.nodes[&b].active_view().contains(&a));
        // A probes; B (which never integrated A) must reject, not ack.
        let probes = h
            .nodes
            .get_mut(&a)
            .unwrap()
            .keepalive_tick(SimTime::from_secs(1));
        let mut disconnects = 0;
        for o in probes {
            if let HpvOut::Send { to, msg } = o {
                assert_eq!(to, b);
                let replies =
                    h.nodes
                        .get_mut(&b)
                        .unwrap()
                        .handle(SimTime::from_secs(1), a, msg, &mut rng);
                for r in replies {
                    if let HpvOut::Send { to, msg } = r {
                        assert_eq!(to, a);
                        assert_eq!(
                            msg,
                            HpvMsg::Disconnect,
                            "non-neighbor probe must be rejected"
                        );
                        disconnects += 1;
                        h.nodes.get_mut(&a).unwrap().handle(
                            SimTime::from_secs(1),
                            b,
                            msg,
                            &mut rng,
                        );
                    }
                }
            }
        }
        assert_eq!(disconnects, 1);
        assert_eq!(h.nodes[&b].stats().half_open_rejections, 1);
        assert!(
            !h.nodes[&a].active_view().contains(&b),
            "the prober must drop the half-open edge"
        );
    }

    #[test]
    fn neighbor_rejection_triggers_retry() {
        let cfg = HyParViewConfig::with_active_size(1).expansion_factor(1);
        let mut a = HyParView::new(NodeId(0), cfg.clone());
        let mut rng = SmallRng::seed_from_u64(5);
        // Give A two passive candidates and no neighbors.
        a.add_passive(NodeId(1), &mut rng);
        a.add_passive(NodeId(2), &mut rng);
        let mut out = Vec::new();
        a.maybe_promote(SimTime::ZERO, &mut rng, &mut out);
        let first = out
            .iter()
            .find_map(|o| match o {
                HpvOut::Send {
                    to,
                    msg: HpvMsg::Neighbor { .. },
                } => Some(*to),
                _ => None,
            })
            .expect("promotion attempt");
        // The candidate rejects; A must try the other one.
        let retry = a.handle(
            SimTime::from_secs(1),
            first,
            HpvMsg::NeighborReply { accepted: false },
            &mut rng,
        );
        let second = retry
            .iter()
            .find_map(|o| match o {
                HpvOut::Send {
                    to,
                    msg: HpvMsg::Neighbor { .. },
                } => Some(*to),
                _ => None,
            })
            .expect("retry after rejection");
        assert_ne!(first, second);
    }

    #[test]
    fn eviction_keeps_view_within_expansion_bound() {
        let cfg = HyParViewConfig::with_active_size(2).expansion_factor(2);
        let mut node = HyParView::new(NodeId(0), cfg.clone());
        let mut out = Vec::new();
        for i in 1..=10u32 {
            node.add_active(NodeId(i), SimTime::ZERO, &mut out);
        }
        assert!(node.active_view().len() <= cfg.max_active());
        // Evictions emitted Disconnect messages.
        let disconnects = out
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    HpvOut::Send {
                        msg: HpvMsg::Disconnect,
                        ..
                    }
                )
            })
            .count();
        assert!(disconnects >= 10 - cfg.max_active());
        assert!(node.stats().evictions as usize >= 10 - cfg.max_active());
    }

    #[test]
    fn disconnect_below_target_promotes_but_expansion_band_does_not() {
        let cfg = HyParViewConfig::with_active_size(2).expansion_factor(2);
        let mut node = HyParView::new(NodeId(0), cfg);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = Vec::new();
        for i in 1..=4u32 {
            node.add_active(NodeId(i), SimTime::ZERO, &mut out);
        }
        node.add_passive(NodeId(99), &mut rng);
        // Dropping from 4 (expansion band) to 3: no promotion.
        let outs = node.handle(SimTime::ZERO, NodeId(1), HpvMsg::Disconnect, &mut rng);
        assert!(
            !outs.iter().any(|o| matches!(
                o,
                HpvOut::Send {
                    msg: HpvMsg::Neighbor { .. },
                    ..
                }
            )),
            "no replacement while in the expansion band"
        );
        // Drop to 2 then to 1 (< target 2): promotion must fire.
        let _ = node.handle(SimTime::ZERO, NodeId(2), HpvMsg::Disconnect, &mut rng);
        let outs = node.handle(SimTime::ZERO, NodeId(3), HpvMsg::Disconnect, &mut rng);
        assert!(
            outs.iter().any(|o| matches!(
                o,
                HpvOut::Send {
                    msg: HpvMsg::Neighbor { .. },
                    ..
                }
            )),
            "replacement expected below the target size"
        );
    }

    #[test]
    fn forward_join_at_ttl_zero_adds_new_node() {
        let cfg = HyParViewConfig::with_active_size(4);
        let mut node = HyParView::new(NodeId(5), cfg);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        node.add_active(NodeId(1), SimTime::ZERO, &mut out);
        node.add_active(NodeId(2), SimTime::ZERO, &mut out);
        let outs = node.handle(
            SimTime::ZERO,
            NodeId(1),
            HpvMsg::ForwardJoin {
                new_node: NodeId(9),
                ttl: 0,
            },
            &mut rng,
        );
        assert!(node.is_neighbor(NodeId(9)));
        assert!(outs.iter().any(|o| matches!(
            o,
            HpvOut::Send {
                to: NodeId(9),
                msg: HpvMsg::Neighbor {
                    high_priority: true
                }
            }
        )));
    }

    #[test]
    fn forward_join_with_ttl_forwards_and_fills_passive() {
        let cfg = HyParViewConfig::default(); // prwl = 3
        let mut node = HyParView::new(NodeId(5), cfg);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        node.add_active(NodeId(1), SimTime::ZERO, &mut out);
        node.add_active(NodeId(2), SimTime::ZERO, &mut out);
        node.add_active(NodeId(3), SimTime::ZERO, &mut out);
        let outs = node.handle(
            SimTime::ZERO,
            NodeId(1),
            HpvMsg::ForwardJoin {
                new_node: NodeId(9),
                ttl: 3,
            },
            &mut rng,
        );
        assert!(
            node.passive_view().contains(&NodeId(9)),
            "ttl == prwl adds to passive"
        );
        assert!(!node.is_neighbor(NodeId(9)));
        let forwarded = outs.iter().any(|o| {
            matches!(
                o,
                HpvOut::Send {
                    msg: HpvMsg::ForwardJoin {
                        new_node: NodeId(9),
                        ttl: 2
                    },
                    ..
                }
            )
        });
        assert!(forwarded, "walk must continue with decremented ttl");
    }

    #[test]
    fn shuffle_reply_integrates_new_nodes() {
        let cfg = HyParViewConfig::default();
        let mut node = HyParView::new(NodeId(0), cfg);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        node.add_active(NodeId(1), SimTime::ZERO, &mut out);
        let _ = node.shuffle_tick(&mut rng);
        let outs = node.handle(
            SimTime::ZERO,
            NodeId(1),
            HpvMsg::ShuffleReply {
                nodes: vec![NodeId(7), NodeId(8), NodeId(1), NodeId(0)],
            },
            &mut rng,
        );
        assert!(outs.is_empty());
        assert!(node.passive_view().contains(&NodeId(7)));
        assert!(node.passive_view().contains(&NodeId(8)));
        assert!(
            !node.passive_view().contains(&NodeId(0)),
            "self never enters passive"
        );
        assert!(
            !node.passive_view().contains(&NodeId(1)),
            "neighbors never enter passive"
        );
    }
}
