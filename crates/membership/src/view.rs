//! A bounded partial view of the system.
//!
//! Both HyParView views (active and passive) and the Cyclon cache are small,
//! bounded sets of node identifiers with random sampling operations. This
//! module provides the shared container.

use brisa_simnet::NodeId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A bounded, duplicate-free set of node identifiers with uniform random
/// sampling helpers.
#[derive(Debug, Clone)]
pub struct BoundedView {
    capacity: usize,
    nodes: Vec<NodeId>,
}

impl BoundedView {
    /// Creates an empty view with the given capacity.
    pub fn new(capacity: usize) -> Self {
        BoundedView {
            capacity,
            nodes: Vec::with_capacity(capacity),
        }
    }

    /// Maximum number of entries the view may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the view has no entries.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if the view holds `capacity` or more entries.
    pub fn is_full(&self) -> bool {
        self.nodes.len() >= self.capacity
    }

    /// True if `node` is in the view.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Adds `node` if not already present and if the view is not full.
    /// Returns true if the node was added.
    pub fn push_unique(&mut self, node: NodeId) -> bool {
        if self.contains(node) || self.is_full() {
            return false;
        }
        self.nodes.push(node);
        true
    }

    /// Adds `node` unconditionally (unless already present), growing past
    /// the capacity. Used by HyParView's expansion-factor mechanism where
    /// the active view may temporarily exceed its target size.
    pub fn push_unbounded(&mut self, node: NodeId) -> bool {
        if self.contains(node) {
            return false;
        }
        self.nodes.push(node);
        true
    }

    /// Removes `node`, returning true if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        if let Some(pos) = self.nodes.iter().position(|&n| n == node) {
            self.nodes.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes and returns a uniformly random entry.
    pub fn drop_random(&mut self, rng: &mut SmallRng) -> Option<NodeId> {
        if self.nodes.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.nodes.len());
        Some(self.nodes.swap_remove(idx))
    }

    /// A uniformly random entry, if any.
    pub fn random(&self, rng: &mut SmallRng) -> Option<NodeId> {
        self.nodes.choose(rng).copied()
    }

    /// A uniformly random entry different from every element of `exclude`.
    pub fn random_excluding(&self, rng: &mut SmallRng, exclude: &[NodeId]) -> Option<NodeId> {
        let candidates: Vec<NodeId> = self
            .nodes
            .iter()
            .copied()
            .filter(|n| !exclude.contains(n))
            .collect();
        candidates.choose(rng).copied()
    }

    /// A uniformly random sample of up to `n` distinct entries.
    pub fn sample(&self, rng: &mut SmallRng, n: usize) -> Vec<NodeId> {
        let mut shuffled = self.nodes.clone();
        shuffled.shuffle(rng);
        shuffled.truncate(n);
        shuffled
    }

    /// All entries, in unspecified order.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn push_respects_capacity_and_uniqueness() {
        let mut v = BoundedView::new(2);
        assert!(v.push_unique(NodeId(1)));
        assert!(!v.push_unique(NodeId(1)), "duplicates rejected");
        assert!(v.push_unique(NodeId(2)));
        assert!(v.is_full());
        assert!(!v.push_unique(NodeId(3)), "full view rejects");
        assert!(
            v.push_unbounded(NodeId(3)),
            "unbounded push grows past capacity"
        );
        assert_eq!(v.len(), 3);
        assert!(
            !v.push_unbounded(NodeId(3)),
            "unbounded push still rejects duplicates"
        );
    }

    #[test]
    fn remove_and_drop_random() {
        let mut v = BoundedView::new(4);
        for i in 0..4 {
            v.push_unique(NodeId(i));
        }
        assert!(v.remove(NodeId(2)));
        assert!(!v.remove(NodeId(2)));
        assert!(!v.contains(NodeId(2)));
        let mut r = rng();
        let dropped = v.drop_random(&mut r).unwrap();
        assert!(!v.contains(dropped));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn drop_random_on_empty_is_none() {
        let mut v = BoundedView::new(2);
        assert_eq!(v.drop_random(&mut rng()), None);
        assert_eq!(v.random(&mut rng()), None);
    }

    #[test]
    fn sampling_is_distinct_and_bounded() {
        let mut v = BoundedView::new(10);
        for i in 0..10 {
            v.push_unique(NodeId(i));
        }
        let mut r = rng();
        let s = v.sample(&mut r, 4);
        assert_eq!(s.len(), 4);
        let mut dedup = s.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        // Sampling more than available returns everything.
        assert_eq!(v.sample(&mut r, 100).len(), 10);
    }

    #[test]
    fn random_excluding_avoids_excluded() {
        let mut v = BoundedView::new(3);
        v.push_unique(NodeId(1));
        v.push_unique(NodeId(2));
        let mut r = rng();
        for _ in 0..20 {
            let pick = v.random_excluding(&mut r, &[NodeId(1)]).unwrap();
            assert_eq!(pick, NodeId(2));
        }
        assert_eq!(v.random_excluding(&mut r, &[NodeId(1), NodeId(2)]), None);
    }

    #[test]
    fn clear_empties_view() {
        let mut v = BoundedView::new(3);
        v.push_unique(NodeId(1));
        v.clear();
        assert!(v.is_empty());
    }
}
