//! # brisa-membership — peer sampling services
//!
//! Membership (peer sampling) substrates used by the BRISA reproduction:
//!
//! * [`hyparview`] — the reactive PSS BRISA builds on: a small, symmetric,
//!   connection-monitored *active view* plus a shuffled *passive view* used
//!   as a reservoir of replacements (Section II-A of the paper).
//! * [`cyclon`] — the proactive PSS used by the SimpleGossip baseline.
//! * [`view`] — the bounded random view container shared by both.
//!
//! All protocols are sans-IO state machines: they consume `(time, sender,
//! message)` inputs and produce effect lists, so they can be unit-tested in
//! isolation and composed into full stacks by the `brisa` and
//! `brisa-baselines` crates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cyclon;
pub mod hyparview;
pub mod view;

pub use cyclon::{Cyclon, CyclonConfig, CyclonMsg, CyclonOut, Descriptor};
pub use hyparview::{HpvMsg, HpvOut, HpvStats, HyParView, HyParViewConfig, HPV_HEADER_BYTES};
pub use view::BoundedView;
