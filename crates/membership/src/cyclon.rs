//! Cyclon: a proactive peer sampling service.
//!
//! Cyclon (Voulgaris, Gavidia, van Steen, JNSM 2005) maintains a fixed-size
//! cache of `(peer, age)` descriptors and periodically *shuffles* part of it
//! with the oldest neighbor, producing a continuously changing random
//! overlay. The BRISA paper uses Cyclon as the membership layer of the
//! SimpleGossip baseline, noting that it performs no explicit failure
//! detection — stale descriptors are simply aged out by subsequent shuffles.

use crate::view::BoundedView;
use brisa_simnet::{NodeId, WireSize};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Fixed per-message overhead charged for every Cyclon message.
pub const CYCLON_HEADER_BYTES: usize = 8;
/// Bytes per descriptor: a node identifier plus a 2-byte age.
pub const DESCRIPTOR_BYTES: usize = brisa_simnet::NodeId::WIRE_SIZE + 2;

/// Configuration of the Cyclon protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CyclonConfig {
    /// Cache (partial view) size.
    pub view_size: usize,
    /// Number of descriptors exchanged per shuffle.
    pub shuffle_length: usize,
    /// Period between shuffles, in simulated seconds (informational; the
    /// embedding stack owns the actual timer).
    pub shuffle_period_secs: u64,
}

impl Default for CyclonConfig {
    fn default() -> Self {
        CyclonConfig {
            view_size: 20,
            shuffle_length: 8,
            shuffle_period_secs: 5,
        }
    }
}

/// A `(peer, age)` descriptor stored in the Cyclon cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor {
    /// The described peer.
    pub node: NodeId,
    /// Number of shuffle periods since the descriptor was created.
    pub age: u16,
}

/// Cyclon wire messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CyclonMsg {
    /// Shuffle request carrying a sample of the sender's cache (the sender
    /// itself is included with age 0).
    ShuffleRequest {
        /// The sample.
        descriptors: Vec<Descriptor>,
    },
    /// Answer carrying a sample of the receiver's cache.
    ShuffleResponse {
        /// The sample.
        descriptors: Vec<Descriptor>,
    },
}

impl WireSize for CyclonMsg {
    fn wire_size(&self) -> usize {
        let n = match self {
            CyclonMsg::ShuffleRequest { descriptors } => descriptors.len(),
            CyclonMsg::ShuffleResponse { descriptors } => descriptors.len(),
        };
        // An explicit u16 descriptor count precedes the entries, mirroring
        // the `runtime::wire` encoding.
        CYCLON_HEADER_BYTES + 2 + n * DESCRIPTOR_BYTES
    }
}

/// Effects produced by the Cyclon state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum CyclonOut {
    /// Send `msg` to `to`.
    Send {
        /// Destination.
        to: NodeId,
        /// Message.
        msg: CyclonMsg,
    },
}

/// The Cyclon state machine for one node.
#[derive(Debug)]
pub struct Cyclon {
    me: NodeId,
    cfg: CyclonConfig,
    cache: Vec<Descriptor>,
    /// Descriptors sent in the last shuffle request, preferred for
    /// replacement when integrating the response.
    last_sent: Vec<Descriptor>,
}

impl Cyclon {
    /// Creates the state machine for node `me`.
    pub fn new(me: NodeId, cfg: CyclonConfig) -> Self {
        Cyclon {
            me,
            cfg,
            cache: Vec::new(),
            last_sent: Vec::new(),
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The neighbors currently known (the partial view).
    pub fn neighbors(&self) -> Vec<NodeId> {
        self.cache.iter().map(|d| d.node).collect()
    }

    /// Number of cache entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Seeds the cache with an initial set of peers (bootstrap).
    pub fn bootstrap(&mut self, seeds: &[NodeId]) {
        for &s in seeds {
            if s != self.me && !self.contains(s) && self.cache.len() < self.cfg.view_size {
                self.cache.push(Descriptor { node: s, age: 0 });
            }
        }
    }

    fn contains(&self, node: NodeId) -> bool {
        self.cache.iter().any(|d| d.node == node)
    }

    /// A uniformly random sample of `n` distinct neighbors (used by the
    /// rumor-mongering layer of SimpleGossip to pick gossip targets).
    pub fn sample(&self, rng: &mut SmallRng, n: usize) -> Vec<NodeId> {
        let view = {
            let mut v = BoundedView::new(self.cache.len().max(1));
            for d in &self.cache {
                v.push_unique(d.node);
            }
            v
        };
        view.sample(rng, n)
    }

    /// Periodic shuffle: ages every descriptor, selects the *oldest* peer as
    /// the shuffle partner, and sends it a sample of the cache with a fresh
    /// descriptor of this node.
    pub fn shuffle_tick(&mut self, rng: &mut SmallRng) -> Vec<CyclonOut> {
        if self.cache.is_empty() {
            return Vec::new();
        }
        for d in &mut self.cache {
            d.age = d.age.saturating_add(1);
        }
        // Oldest descriptor is the shuffle partner; remove it (it will be
        // replaced by entries from the partner's response).
        let oldest_idx = self
            .cache
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.age)
            .map(|(i, _)| i)
            .expect("cache is non-empty");
        let partner = self.cache.remove(oldest_idx);
        // Sample l-1 other descriptors plus a fresh descriptor of ourselves.
        let mut others: Vec<Descriptor> = self.cache.clone();
        others.shuffle(rng);
        others.truncate(self.cfg.shuffle_length.saturating_sub(1));
        let mut sent = others;
        sent.push(Descriptor {
            node: self.me,
            age: 0,
        });
        self.last_sent = sent.clone();
        vec![CyclonOut::Send {
            to: partner.node,
            msg: CyclonMsg::ShuffleRequest { descriptors: sent },
        }]
    }

    /// Handles a Cyclon message from `from`.
    pub fn handle(&mut self, from: NodeId, msg: CyclonMsg, rng: &mut SmallRng) -> Vec<CyclonOut> {
        match msg {
            CyclonMsg::ShuffleRequest { descriptors } => {
                // Reply with a random sample of our own cache.
                let mut reply: Vec<Descriptor> = self.cache.clone();
                reply.shuffle(rng);
                reply.truncate(self.cfg.shuffle_length);
                let sent = reply.clone();
                self.integrate(&descriptors, &sent);
                vec![CyclonOut::Send {
                    to: from,
                    msg: CyclonMsg::ShuffleResponse { descriptors: reply },
                }]
            }
            CyclonMsg::ShuffleResponse { descriptors } => {
                let sent = std::mem::take(&mut self.last_sent);
                self.integrate(&descriptors, &sent);
                Vec::new()
            }
        }
    }

    /// Integrates received descriptors: never add self or duplicates, fill
    /// empty slots first, then replace entries that were sent to the peer,
    /// then replace the oldest entries.
    fn integrate(&mut self, received: &[Descriptor], sent: &[Descriptor]) {
        for &d in received {
            if d.node == self.me || self.contains(d.node) {
                continue;
            }
            if self.cache.len() < self.cfg.view_size {
                self.cache.push(d);
                continue;
            }
            // Replace an entry we sent away, if one is still present.
            if let Some(pos) = self
                .cache
                .iter()
                .position(|c| sent.iter().any(|s| s.node == c.node))
            {
                self.cache[pos] = d;
                continue;
            }
            // Otherwise replace the oldest entry.
            if let Some((pos, oldest)) = self
                .cache
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| c.age)
                .map(|(i, c)| (i, c.age))
            {
                if oldest >= d.age {
                    self.cache[pos] = d;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(17)
    }

    #[test]
    fn bootstrap_ignores_self_and_duplicates() {
        let mut c = Cyclon::new(NodeId(0), CyclonConfig::default());
        c.bootstrap(&[NodeId(0), NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(c.len(), 2);
        assert!(!c.neighbors().contains(&NodeId(0)));
    }

    #[test]
    fn shuffle_targets_oldest_and_includes_self() {
        let mut c = Cyclon::new(NodeId(0), CyclonConfig::default());
        c.bootstrap(&[NodeId(1), NodeId(2), NodeId(3)]);
        // Age node 2 artificially by two rounds of shuffling with empty integration.
        let mut r = rng();
        let outs = c.shuffle_tick(&mut r);
        assert_eq!(outs.len(), 1);
        let CyclonOut::Send { to, msg } = &outs[0];
        // All descriptors aged equally, so the partner is simply one of them.
        assert!([NodeId(1), NodeId(2), NodeId(3)].contains(to));
        match msg {
            CyclonMsg::ShuffleRequest { descriptors } => {
                assert!(descriptors
                    .iter()
                    .any(|d| d.node == NodeId(0) && d.age == 0));
            }
            _ => panic!("expected a shuffle request"),
        }
        // The partner was removed from the cache pending the response.
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn request_response_exchanges_descriptors() {
        let mut a = Cyclon::new(NodeId(0), CyclonConfig::default());
        let mut b = Cyclon::new(NodeId(1), CyclonConfig::default());
        a.bootstrap(&[NodeId(1)]);
        b.bootstrap(&[NodeId(3), NodeId(4)]);
        let mut r = rng();
        let outs = a.shuffle_tick(&mut r);
        let mut response = Vec::new();
        for CyclonOut::Send { to, msg } in outs {
            assert_eq!(to, NodeId(1), "the only neighbor is the shuffle partner");
            response = b.handle(NodeId(0), msg, &mut r);
        }
        assert!(!response.is_empty(), "partner must answer");
        for CyclonOut::Send { to, msg } in response {
            assert_eq!(to, NodeId(0));
            a.handle(NodeId(1), msg, &mut r);
        }
        // B learned about A (descriptor with age 0) and possibly node 2.
        assert!(b.neighbors().contains(&NodeId(0)));
        // A learned something from B's cache.
        assert!(a
            .neighbors()
            .iter()
            .any(|n| [NodeId(3), NodeId(4)].contains(n)));
    }

    #[test]
    fn cache_never_exceeds_view_size_nor_contains_self() {
        let cfg = CyclonConfig {
            view_size: 5,
            shuffle_length: 3,
            shuffle_period_secs: 1,
        };
        let n = 20u32;
        let mut nodes: HashMap<NodeId, Cyclon> = (0..n)
            .map(|i| (NodeId(i), Cyclon::new(NodeId(i), cfg.clone())))
            .collect();
        // Ring bootstrap.
        for i in 0..n {
            let seeds: Vec<NodeId> = (1..=3).map(|k| NodeId((i + k) % n)).collect();
            nodes.get_mut(&NodeId(i)).unwrap().bootstrap(&seeds);
        }
        let mut r = rng();
        for _round in 0..30 {
            for i in 0..n {
                let outs = nodes.get_mut(&NodeId(i)).unwrap().shuffle_tick(&mut r);
                for CyclonOut::Send { to, msg } in outs {
                    let replies = nodes.get_mut(&to).unwrap().handle(NodeId(i), msg, &mut r);
                    for CyclonOut::Send { to: back, msg } in replies {
                        nodes.get_mut(&back).unwrap().handle(to, msg, &mut r);
                    }
                }
            }
        }
        for (id, c) in &nodes {
            assert!(c.len() <= cfg.view_size);
            assert!(!c.neighbors().contains(id));
            let mut ns = c.neighbors();
            ns.sort();
            ns.dedup();
            assert_eq!(ns.len(), c.len(), "no duplicate descriptors");
        }
        // The overlay keeps everyone reachable in the union graph.
        let mut visited = vec![false; n as usize];
        let mut stack = vec![NodeId(0)];
        visited[0] = true;
        while let Some(cur) = stack.pop() {
            for peer in nodes[&cur].neighbors() {
                if !visited[peer.index()] {
                    visited[peer.index()] = true;
                    stack.push(peer);
                }
            }
        }
        assert!(visited.iter().all(|&v| v), "cyclon overlay stays connected");
    }

    #[test]
    fn sample_returns_distinct_neighbors() {
        let mut c = Cyclon::new(NodeId(0), CyclonConfig::default());
        c.bootstrap(&(1..=10).map(NodeId).collect::<Vec<_>>());
        let mut r = rng();
        let s = c.sample(&mut r, 4);
        assert_eq!(s.len(), 4);
        let mut d = s.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn wire_size_scales_with_descriptor_count() {
        let one = CyclonMsg::ShuffleRequest {
            descriptors: vec![Descriptor {
                node: NodeId(1),
                age: 0,
            }],
        };
        let three = CyclonMsg::ShuffleRequest {
            descriptors: vec![
                Descriptor {
                    node: NodeId(1),
                    age: 0,
                },
                Descriptor {
                    node: NodeId(2),
                    age: 1,
                },
                Descriptor {
                    node: NodeId(3),
                    age: 2,
                },
            ],
        };
        assert_eq!(three.wire_size() - one.wire_size(), 2 * DESCRIPTOR_BYTES);
    }
}
