//! The BRISA dissemination state machine.
//!
//! [`BrisaCore`] implements the protocol of Section II: the bootstrap flood
//! of the first stream message, the emergence of a tree or DAG through link
//! deactivation, cycle prevention, the parent selection strategies, and the
//! soft/hard repair mechanisms used under churn. It is a sans-IO state
//! machine; the `node` module composes it with HyParView into a runnable
//! simulator protocol, and the unit tests below drive it directly.

use crate::buffer::MessageBuffer;
use crate::config::{BrisaConfig, ParentStrategy};
use crate::cycle::{CycleGuard, CycleState};
use crate::links::Links;
use crate::message::{BrisaAction, BrisaMsg, DataMsg};
use crate::parent::{CandidateSet, NeighborTelemetry};
use crate::stats::BrisaStats;
use brisa_simnet::{NodeId, SimDuration, SimTime};
use brisa_telemetry::{Counter, EventKind as TelEventKind, Histo, Telemetry};
use std::sync::Arc;

/// How long a node waits for a soft repair to produce a parent before
/// escalating to the hard (flooding) repair.
pub const SOFT_REPAIR_TIMEOUT: SimDuration = SimDuration::from_secs(2);
/// Minimum interval between successive hard-repair re-attempts while a node
/// remains orphaned.
pub const HARD_REPAIR_RETRY: SimDuration = SimDuration::from_secs(2);
/// Base interval between successive retransmission requests for the same
/// delivery gap (steady-state loss recovery, Section II-F's buffer-based
/// compensation applied outside the repair path). Short enough that a node
/// behind a healed partition catches up within a few stream intervals,
/// long enough that a single loss costs one request, not a burst. Requests
/// that make no progress back off exponentially (doubling per fruitless
/// attempt, capped at 32× this base), so a hole nobody can fill anymore —
/// evicted from every upstream buffer — decays to background noise instead
/// of soliciting the same retransmissions forever.
pub const GAP_RETRY: SimDuration = SimDuration::from_millis(500);
/// Cap on the exponential gap-retry backoff (`GAP_RETRY << GAP_BACKOFF_MAX`).
pub const GAP_BACKOFF_MAX: u32 = 5;
/// A parenthood is considered *stale* when no stream data has arrived from
/// any parent for this long (ten intervals at the paper's 5 msg/s rate).
/// A first reception from a non-parent while the parents are stale is
/// recovery evidence, not a surplus link — see the fresh-feeder path in
/// `handle_data`.
pub const PARENT_STALE_AFTER: SimDuration = SimDuration::from_secs(2);
/// How long the data path must be quiet (no reception or publish) before a
/// node starts advertising its stream edge to children on the repair tick.
/// While data flows, later messages reveal holes on their own; the
/// advertisement exists for the tail of the stream, where a lost final
/// message is followed by nothing and would otherwise stay invisible
/// forever. Gating on quiescence keeps the advertisement free in steady
/// state (one stream interval at 5 msg/s is 200 ms, well under this).
pub const EDGE_QUIET_AFTER: SimDuration = SimDuration::from_secs(1);

/// Pre-resolved observability handles for the tree-health counters the
/// hot paths bump. All no-ops (the [`Default`]) until
/// [`BrisaCore::set_telemetry`] attaches an enabled registry; strictly
/// out-of-band either way — recording never feeds back into protocol
/// decisions (enforced by the fingerprint tests in
/// `tests/integration_telemetry.rs`).
#[derive(Debug, Default)]
struct CoreTel {
    tel: Telemetry,
    delivered: Counter,
    adopts: Counter,
    deactivations: Counter,
    orphans: Counter,
    orphan_heals: Counter,
    soft_repairs: Counter,
    hard_repairs: Counter,
    gap_requests: Counter,
    retransmits_served: Counter,
    edges_advertised: Counter,
    orphan_us: Histo,
    parent_count: Histo,
}

/// Classification of an ongoing parent-recovery procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairKind {
    /// A replacement parent candidate existed in the active view; only its
    /// inbound link had to be re-activated.
    Soft,
    /// No replacement existed: the node re-bootstrapped by flooding,
    /// forgetting its position and propagating a re-activation order down
    /// its sub-tree.
    Hard,
}

/// The BRISA protocol state for one node.
#[derive(Debug)]
pub struct BrisaCore {
    me: NodeId,
    cfg: BrisaConfig,
    cycle: CycleState,
    links: Links,
    candidates: CandidateSet,
    buffer: MessageBuffer,
    stats: BrisaStats,
    is_source: bool,
    next_seq: u64,
    highest_seq_seen: Option<u64>,
    started_at: Option<SimTime>,
    pending_repair: Option<(SimTime, RepairKind)>,
    last_repair_attempt: Option<SimTime>,
    /// Lowest sequence number not yet delivered: everything below it has
    /// been received. Maintained incrementally (amortised O(1) per
    /// delivery), it is both the start of any retransmission request and
    /// the gap detector — `next_expected <= highest_seq_seen` means known
    /// messages are missing.
    next_expected: u64,
    last_gap_request: Option<SimTime>,
    /// Gap requests issued since the prefix cursor last advanced; drives
    /// the exponential retry backoff.
    gap_attempts: u32,
    /// Last time stream data arrived from a current parent (or a parent was
    /// adopted). Drives the staleness test of the fresh-feeder path.
    last_parent_delivery: Option<SimTime>,
    /// Last time any stream data moved through this node (reception or
    /// publish). Gates the stream-edge advertisement: quiet for
    /// [`EDGE_QUIET_AFTER`] means the tail may be hiding a hole.
    last_data_at: Option<SimTime>,
    /// Observability handles (no-ops unless a registry is attached).
    tel: CoreTel,
}

impl BrisaCore {
    /// Creates the state machine for node `me`.
    pub fn new(me: NodeId, cfg: BrisaConfig) -> Self {
        let cycle = if cfg.mode.is_tree() {
            CycleState::tree()
        } else {
            CycleState::dag()
        };
        let buffer = MessageBuffer::new(cfg.buffer_size);
        let stats = BrisaStats::with_tracking(cfg.tracking);
        BrisaCore {
            me,
            cfg,
            cycle,
            links: Links::new(),
            candidates: CandidateSet::new(),
            buffer,
            stats,
            is_source: false,
            next_seq: 0,
            highest_seq_seen: None,
            started_at: None,
            pending_repair: None,
            last_repair_attempt: None,
            next_expected: 0,
            last_gap_request: None,
            gap_attempts: 0,
            last_parent_delivery: None,
            last_data_at: None,
            tel: CoreTel::default(),
        }
    }

    /// Attaches an observability registry, resolving the counter handles
    /// the hot paths bump. Telemetry is strictly out-of-band: it records
    /// what the protocol did and never influences what it does.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = CoreTel {
            delivered: tel.counter("brisa.delivered"),
            adopts: tel.counter("brisa.adopts"),
            deactivations: tel.counter("brisa.deactivations_sent"),
            orphans: tel.counter("brisa.orphans"),
            orphan_heals: tel.counter("brisa.orphan_heals"),
            soft_repairs: tel.counter("brisa.soft_repairs"),
            hard_repairs: tel.counter("brisa.hard_repairs"),
            gap_requests: tel.counter("brisa.gap_requests"),
            retransmits_served: tel.counter("brisa.retransmissions_served"),
            edges_advertised: tel.counter("brisa.edges_advertised"),
            orphan_us: tel.histogram("brisa.orphan_us"),
            parent_count: tel.histogram("brisa.parent_count"),
            tel: tel.clone(),
        };
    }

    /// Records a flight-recorder event for this node (no-op when no
    /// registry is attached).
    fn tel_event(&self, now: SimTime, kind: TelEventKind, a: u64, b: u64) {
        self.tel.tel.event(now.as_micros(), self.me.0, kind, a, b);
    }

    /// Marks this node orphaned in the observability layer (counter plus
    /// flight-recorder event). Called wherever the protocol bookkeeping
    /// pushes onto `stats.orphaned`.
    fn tel_orphaned(&self, now: SimTime, lost_parent: NodeId) {
        self.tel.orphans.inc();
        self.tel_event(now, TelEventKind::Orphan, lost_parent.0 as u64, 0);
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The configuration in force.
    pub fn config(&self) -> &BrisaConfig {
        &self.cfg
    }

    /// Marks this node as the stream source (root of the structure).
    pub fn mark_source(&mut self) {
        self.is_source = true;
        self.cycle.set_root(self.me);
    }

    /// True if this node is the stream source.
    pub fn is_source(&self) -> bool {
        self.is_source
    }

    /// Records the time the node started executing (used to advertise uptime
    /// for the gerontocratic strategy).
    pub fn note_started(&mut self, now: SimTime) {
        self.started_at = Some(now);
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &BrisaStats {
        &self.stats
    }

    /// Rough memory footprint of the dissemination state in bytes (inline
    /// struct plus tracked heap: the delivery ledger, repair timelines,
    /// buffer handles and link table). Summed across nodes by the
    /// scale-mode bytes-per-node accounting.
    pub fn approx_state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.stats.delivery.approx_bytes()
            + (self.stats.parents_lost.capacity() + self.stats.orphaned.capacity())
                * std::mem::size_of::<SimTime>()
            + (self.stats.soft_repair_delays_us.capacity()
                + self.stats.hard_repair_delays_us.capacity())
                * std::mem::size_of::<u64>()
            + self.buffer.len() * 2 * std::mem::size_of::<usize>()
            + self.links.degree() * 3 * std::mem::size_of::<NodeId>()
    }

    /// Link state (parents, children, activation flags).
    pub fn links(&self) -> &Links {
        &self.links
    }

    /// Current parents.
    pub fn parents(&self) -> Vec<NodeId> {
        self.links.parents().collect()
    }

    /// Current children (the node's degree in the emerged structure).
    pub fn children(&self) -> Vec<NodeId> {
        self.links.children()
    }

    /// Depth of this node in the emerged structure (hops from the source),
    /// if it has positioned itself.
    pub fn depth(&self) -> Option<usize> {
        self.cycle.position()
    }

    /// True if a repair (soft or hard) is currently in progress.
    pub fn repair_pending(&self) -> bool {
        self.pending_repair.is_some()
    }

    // ------------------------------------------------------------------
    // Membership events
    // ------------------------------------------------------------------

    /// A new overlay neighbor appeared (HyParView `NeighborUp`). Links to
    /// new nodes start active in both directions.
    pub fn on_neighbor_up(&mut self, peer: NodeId) {
        if peer != self.me {
            self.links.neighbor_up(peer);
        }
    }

    /// An overlay neighbor disappeared (failure detected by the PSS). If the
    /// neighbor was a parent, the repair procedure of Section II-F runs.
    pub fn on_neighbor_down(&mut self, now: SimTime, peer: NodeId) -> Vec<BrisaAction> {
        let mut actions = Vec::new();
        self.candidates.remove(peer);
        let was_parent = self.links.neighbor_down(peer);
        if was_parent && !self.is_source {
            self.stats.parents_lost.push(now);
            if self.links.parent_count() == 0 {
                self.stats.orphaned.push(now);
                self.tel_orphaned(now, peer);
                self.start_repair(now, &mut actions);
            }
        }
        actions
    }

    // ------------------------------------------------------------------
    // Stream injection (source only)
    // ------------------------------------------------------------------

    /// Publishes the next stream message (source only). The first call
    /// doubles as the bootstrap flood that seeds the structure.
    pub fn publish(&mut self, now: SimTime, payload_bytes: usize) -> Vec<BrisaAction> {
        assert!(self.is_source, "only the source publishes stream messages");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tel.delivered.inc();
        self.stats.record_delivery(seq, now);
        self.note_delivered(seq);
        self.highest_seq_seen = Some(self.highest_seq_seen.map_or(seq, |h| h.max(seq)));
        self.last_data_at = Some(now);
        // One allocation for the message; every recipient shares it.
        let data = Arc::new(DataMsg {
            seq,
            payload_bytes,
            guard: self.cycle.outgoing_guard(self.me),
            sender_uptime_secs: self.uptime_secs(now),
            sender_load: self.links.degree().min(u16::MAX as usize) as u16,
        });
        self.buffer.insert(data.clone());
        let mut actions = vec![BrisaAction::Deliver { seq }];
        for peer in self.links.outbound_active() {
            actions.push(BrisaAction::Send {
                to: peer,
                msg: BrisaMsg::Data(data.clone()),
            });
        }
        actions
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    /// Handles a BRISA message from `from`. `telemetry` provides link
    /// measurements (RTT from the PSS keep-alives) for the delay-aware
    /// strategy.
    pub fn handle(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: BrisaMsg,
        telemetry: &dyn NeighborTelemetry,
    ) -> Vec<BrisaAction> {
        match msg {
            BrisaMsg::Data(data) => self.handle_data(now, from, data, telemetry),
            BrisaMsg::Deactivate { symmetric } => {
                self.links.deactivate_outbound(from);
                let mut actions = Vec::new();
                // A symmetric deactivation means the sender also stopped
                // relaying to us. If we considered it a parent, that
                // parenthood is dead — clinging to it would starve this
                // node silently (no data, no link-down, no gap evidence),
                // so treat it as a parent loss and repair.
                if symmetric && !self.is_source && self.links.is_parent(from) {
                    self.links.drop_parent(from);
                    self.stats.parents_lost.push(now);
                    if self.links.parent_count() == 0 {
                        self.stats.orphaned.push(now);
                        self.tel_orphaned(now, from);
                        self.start_repair(now, &mut actions);
                    }
                }
                actions
            }
            BrisaMsg::Activate => {
                self.links.reactivate_outbound(from);
                // Answer with the most recent buffered message so a
                // recovering orphan can adopt a parent (and then request the
                // rest of the gap) without waiting for the next injection.
                //
                // Only nodes with an upstream of their own may answer: a
                // node that is itself orphaned (or mid-repair) answering
                // with stale buffered data advertises itself as a parent
                // while disconnected. Two simultaneous orphans Activating
                // each other would then *mutually adopt* — a parent cycle
                // with no path to the source that no fresh data ever
                // enters, so the path-embedding cycle detection never
                // fires and the whole subtree below wedges silently
                // (reproduced at every mass-crash scale; ~12 % of
                // survivors at 10 000 nodes before this guard). The link
                // reactivation above still happens, so whichever orphan
                // recovers first relays fresh data to the other and
                // adoption proceeds through the normal first-reception
                // path.
                // The answer is also gated on still *knowing* the
                // requester: if our membership layer already evicted it,
                // the `reactivate_outbound` above was a no-op, so we would
                // hand it adoption bait and then never relay a single
                // message to it — the child wedges on a parent that is
                // healthy but link-less towards it (the dominant residual
                // wedge class after mass crashes: stale asymmetric views).
                let mut actions = Vec::new();
                let has_upstream = self.is_source
                    || (self.links.parent_count() > 0 && self.pending_repair.is_none());
                let latest = (has_upstream && self.links.is_neighbor(from))
                    .then(|| {
                        self.buffer
                            .highest_seq()
                            .and_then(|s| self.buffer.get(s))
                            .map(|m| (m.seq, m.payload_bytes))
                    })
                    .flatten();
                if let Some((seq, payload_bytes)) = latest {
                    let guard = self.cycle.outgoing_guard(self.me);
                    actions.push(BrisaAction::Send {
                        to: from,
                        msg: BrisaMsg::data(DataMsg {
                            seq,
                            payload_bytes,
                            guard,
                            sender_uptime_secs: self.uptime_secs(now),
                            sender_load: self.links.degree().min(u16::MAX as usize) as u16,
                        }),
                    });
                }
                actions
            }
            BrisaMsg::ReactivationOrder => self.handle_reactivation_order(now, from),
            BrisaMsg::DepthUpdate { depth } => self.handle_depth_update(from, depth),
            BrisaMsg::Retransmit { from_seq, to_seq } => {
                self.handle_retransmit(now, from, from_seq, to_seq)
            }
            BrisaMsg::Edge { highest } => self.handle_edge(now, from, highest),
        }
    }

    /// A stream-edge advertisement from an upstream node: anything between
    /// our contiguous prefix and the advertised edge is now a *known* gap,
    /// so the regular rate-limited retransmission path can close it — this
    /// is how a message lost at the stream's tail (which no later data ever
    /// reveals) gets repaired.
    fn handle_edge(&mut self, now: SimTime, from: NodeId, highest: u64) -> Vec<BrisaAction> {
        let mut actions = Vec::new();
        if self.is_source {
            return actions;
        }
        // A node that has never delivered anchors exactly like the data
        // path: only what an upstream buffer could still serve is treated
        // as a recoverable gap.
        if self.stats.delivered == 0 {
            self.next_expected = highest.saturating_sub(self.cfg.buffer_size as u64);
        }
        self.highest_seq_seen = Some(self.highest_seq_seen.map_or(highest, |h| h.max(highest)));
        let known_gap = self
            .highest_seq_seen
            .is_some_and(|h| self.next_expected <= h);
        if known_gap && self.pending_repair.is_none() {
            self.request_gap(now, from, &mut actions);
        }
        actions
    }

    fn handle_data(
        &mut self,
        now: SimTime,
        from: NodeId,
        data: Arc<DataMsg>,
        telemetry: &dyn NeighborTelemetry,
    ) -> Vec<BrisaAction> {
        let mut actions = Vec::new();
        // The sender is (re)observed as a parent candidate.
        self.candidates.observe(
            from,
            now,
            telemetry.rtt(from),
            data.sender_uptime_secs,
            data.sender_load,
        );
        // A node that has never delivered anything anchors its contiguous
        // prefix one buffer window below the first message it sees: a
        // joiner arriving mid-stream must not treat history that is long
        // evicted from every buffer as a recoverable gap, but everything a
        // peer could still serve — including seq 0 when an original node's
        // first reception arrives ahead of a lost bootstrap copy — remains
        // requestable.
        if self.stats.delivered == 0 && !self.is_source {
            self.next_expected = data.seq.saturating_sub(self.cfg.buffer_size as u64);
        }
        self.highest_seq_seen = Some(self.highest_seq_seen.map_or(data.seq, |h| h.max(data.seq)));
        self.last_data_at = Some(now);
        let first = self.stats.record_delivery(data.seq, now);
        if first {
            self.tel.delivered.inc();
            actions.push(BrisaAction::Deliver { seq: data.seq });
            if self.pending_repair.is_some() {
                self.stats.messages_recovered += 1;
            }
            self.buffer.insert(data.clone());
            self.note_delivered(data.seq);
        }

        if self.is_source {
            // The source never needs inbound stream traffic.
            self.deactivate(now, from, &mut actions);
            return actions;
        }

        // Steady-state loss recovery: a sequence number ahead of the
        // contiguous delivered prefix reveals a hole (a message lost on the
        // wire, or everything missed behind a healed partition). Ask the
        // sender — it relayed the newer message, so its buffer covers the
        // gap or soon will — rate-limited so one hole costs one request.
        // While a repair is pending, the adoption path issues the request
        // instead.
        if self.next_expected < data.seq && self.pending_repair.is_none() {
            self.request_gap(now, from, &mut actions);
        }

        // Parent machinery.
        let adoptable = self.can_adopt(from, &data.guard);
        if self.links.is_parent(from) {
            self.last_parent_delivery = Some(now);
            // A message from a current parent whose path contains us reveals
            // a cycle (Section II-D) and forces a re-selection. With depth
            // labels a parent that moved deeper is not a cycle: the paper's
            // rule is that the child simply moves one level further down.
            let cycle_detected = matches!(
                (&self.cycle, &data.guard),
                (CycleState::Path(_), crate::cycle::CycleGuard::Path(p)) if p.contains(&self.me)
            );
            if !cycle_detected {
                self.update_position(&data.guard, &mut actions);
            } else {
                self.deactivate(now, from, &mut actions);
                if self.links.parent_count() == 0 {
                    self.stats.orphaned.push(now);
                    self.tel_orphaned(now, from);
                    self.start_repair(now, &mut actions);
                }
            }
        } else if adoptable && self.links.parent_count() < self.cfg.mode.target_parents() {
            // A free parent slot: adopt this sender.
            self.adopt(now, from, &mut actions);
            self.update_position(&data.guard, &mut actions);
        } else if !adoptable {
            // The sender cannot be a parent; stop it from relaying to us.
            self.deactivate(now, from, &mut actions);
        } else if data.seq == 0 || self.pending_repair.is_some() {
            // Duplicate of the bootstrap flood (or a reception while a repair
            // is in progress): run the parent selection strategy over the
            // current parents plus this candidate (Figure 3). Strategy-driven
            // switches are confined to structure-formation time; switching an
            // established tree on in-flight (possibly stale) path metadata
            // can stitch a cycle out of two concurrent switches.
            self.consider_replacement(now, from, &data.guard, &mut actions);
        } else if first && self.parents_stale(now) {
            // A *first* reception from a surplus sender while no parent has
            // delivered anything for PARENT_STALE_AFTER: the incumbent
            // parenthood is dead weight (its upstream chain is broken in a
            // way no local signal reports — alive parent, silent link) and
            // this sender is provably connected to fresh data. Deactivating
            // it here is how a mass-crash recovery deadlocks globally:
            // after a 50 % correlated failure the healed nodes around the
            // source relay new sequence numbers into the wedged region,
            // and every wedged node used to answer with `Deactivate` in
            // favour of its stale parent — silencing the only live feeder
            // (reproduced at 20k/100k nodes: the source lost every
            // outbound link within a second of the crash and the stream
            // died at the crash sequence number overlay-wide). Instead:
            // re-parent onto the sender when it sits strictly closer to
            // the source (the same upward guard as `consider_replacement`,
            // so concurrent switches cannot stitch a cycle); otherwise
            // leave the link active and let a genuine duplicate prune it
            // later.
            self.adopt_fresh_feeder(now, from, &data.guard, &mut actions);
        } else if !first {
            // Steady-state duplicate: keep the incumbent parents and silence
            // the surplus sender. Deactivation is *duplicate-triggered*
            // (Section II-C): a first reception from a surplus sender is a
            // latency race, not redundancy — the sender is ahead of our
            // parents for this message. Deactivating on firsts silences
            // live feeders one message at a time, which is how the
            // mass-crash recovery deadlock above started; leaving the link
            // active costs at most a few extra duplicates until the
            // sender's copy loses a race and the link prunes normally.
            let symmetric = self.cfg.symmetric_deactivation
                && self.cfg.strategy == ParentStrategy::FirstComeFirstPicked
                && self.cfg.mode.is_tree();
            self.deactivate_flagged(now, from, symmetric, &mut actions);
            if symmetric {
                self.links.deactivate_outbound(from);
            }
        }

        // Relay the payload once, to every outbound-active neighbor except
        // the sender, carrying our own position metadata.
        if first && !self.cycle.is_unset() {
            self.relay(now, &data, Some(from), &mut actions);
        }
        actions
    }

    fn handle_reactivation_order(&mut self, now: SimTime, from: NodeId) -> Vec<BrisaAction> {
        let mut actions = Vec::new();
        if self.is_source {
            return actions;
        }
        let children = self.links.children();
        let alternatives: Vec<NodeId> = self
            .links
            .neighbors()
            .filter(|&n| n != from && !children.contains(&n))
            .collect();
        if !alternatives.is_empty() {
            // We can replace the ordering parent locally: re-activate the
            // inbound links of the alternatives and let the normal selection
            // adopt whichever relays next. The previous parent may become a
            // child (role exchange, Section II-F).
            if self.links.is_parent(from) {
                self.links.drop_parent(from);
            }
            if self.links.parent_count() == 0 {
                self.pending_repair.get_or_insert((now, RepairKind::Soft));
            }
            for n in alternatives {
                self.links.reactivate_inbound(n);
                self.stats.activations_sent += 1;
                actions.push(BrisaAction::Send {
                    to: n,
                    msg: BrisaMsg::Activate,
                });
            }
        } else {
            // Cascade: behave exactly like the orphan that sent the order.
            // The re-activation order is forwarded only to the children we
            // had *before* dropping the ordering parent, so two nodes never
            // bounce orders back and forth.
            if self.links.is_parent(from) {
                self.links.drop_parent(from);
            }
            if self.links.parent_count() == 0 {
                self.pending_repair.get_or_insert((now, RepairKind::Hard));
                self.last_repair_attempt = Some(now);
            }
            self.cycle.reset();
            self.links.reactivate_all_inbound();
            for n in self.links.neighbors().collect::<Vec<_>>() {
                self.stats.activations_sent += 1;
                actions.push(BrisaAction::Send {
                    to: n,
                    msg: BrisaMsg::Activate,
                });
            }
            for c in children {
                self.stats.reactivation_orders_sent += 1;
                actions.push(BrisaAction::Send {
                    to: c,
                    msg: BrisaMsg::ReactivationOrder,
                });
            }
        }
        actions
    }

    fn handle_depth_update(&mut self, from: NodeId, depth: u32) -> Vec<BrisaAction> {
        let mut actions = Vec::new();
        if self.cfg.mode.is_tree() || !self.links.is_parent(from) {
            return actions;
        }
        let changed = self
            .cycle
            .position_after(self.me, &crate::cycle::CycleGuard::Depth(depth));
        if changed {
            self.push_depth_update(&mut actions);
        }
        actions
    }

    fn handle_retransmit(
        &mut self,
        now: SimTime,
        from: NodeId,
        from_seq: u64,
        to_seq: u64,
    ) -> Vec<BrisaAction> {
        let mut actions = Vec::new();
        let missing = self.buffer.range(from_seq, to_seq);
        let guard = self.cycle.outgoing_guard(self.me);
        let uptime = self.uptime_secs(now);
        let load = self.links.degree().min(u16::MAX as usize) as u16;
        for m in missing {
            self.stats.retransmissions_served += 1;
            self.tel.retransmits_served.inc();
            actions.push(BrisaAction::Send {
                to: from,
                msg: BrisaMsg::data(DataMsg {
                    seq: m.seq,
                    payload_bytes: m.payload_bytes,
                    guard: guard.clone(),
                    sender_uptime_secs: uptime,
                    sender_load: load,
                }),
            });
        }
        if !actions.is_empty() {
            self.tel_event(
                now,
                TelEventKind::RetransmitServed,
                from.0 as u64,
                actions.len() as u64,
            );
        }
        actions
    }

    /// Builds the shared message this node relays for `data`: same sequence
    /// and payload, but carrying *this* node's position metadata. Allocated
    /// once and `Arc`-cloned per recipient.
    fn relayed_copy(&self, now: SimTime, data: &DataMsg) -> Arc<DataMsg> {
        Arc::new(DataMsg {
            seq: data.seq,
            payload_bytes: data.payload_bytes,
            guard: self.cycle.outgoing_guard(self.me),
            sender_uptime_secs: self.uptime_secs(now),
            sender_load: self.links.degree().min(u16::MAX as usize) as u16,
        })
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    /// Whether `from` may be adopted as a new parent right now.
    ///
    /// The sender must be a *current overlay neighbor*: the dissemination
    /// structure is embedded in the overlay, and a sender we no longer hold
    /// a membership link to will never put us back among its outbound-active
    /// children — adopting it (e.g. from the data burst answering a repair
    /// `Activate` that crossed paths with our eviction from the sender's
    /// view) would leave this node with a parent that never relays again, a
    /// silent permanent starvation. The simulator's seeded schedules do not
    /// produce that interleaving; the live runtime's wall-clock ones do.
    ///
    /// Beyond that — tree mode: exactly the path-embedding check. DAG mode:
    /// the sender's depth must be strictly smaller, or equal with a
    /// deterministic identifier tie-break. The tie-break prevents two
    /// equal-depth nodes from adopting each other based on in-flight
    /// (stale) depth labels, which would create a two-node cycle the
    /// approximate scheme could not detect.
    fn can_adopt(&self, from: NodeId, guard: &CycleGuard) -> bool {
        if !self.links.is_neighbor(from) {
            return false;
        }
        match (&self.cycle, guard) {
            (CycleState::Depth(my_depth), CycleGuard::Depth(sender_depth)) => match my_depth {
                None => true,
                Some(d) => {
                    // Equal-depth senders are adoptable with a deterministic
                    // identifier tie-break, or unconditionally when the node
                    // is orphaned: adopting then moves this node one level
                    // deeper, so the new parent cannot simultaneously adopt
                    // it back.
                    sender_depth < d
                        || (sender_depth == d
                            && (from.0 < self.me.0 || self.links.parent_count() == 0))
                }
            },
            _ => self.cycle.permits(self.me, guard),
        }
    }

    fn uptime_secs(&self, now: SimTime) -> u32 {
        self.started_at
            .map(|s| now.saturating_since(s).as_secs_f64() as u32)
            .unwrap_or(0)
    }

    /// Advances the contiguous-prefix cursor after `seq` was recorded as
    /// delivered. Amortised O(1): each sequence number is stepped over once
    /// in the node's lifetime.
    fn note_delivered(&mut self, seq: u64) {
        if seq == self.next_expected {
            self.next_expected += 1;
            while self.stats.delivery.contains(self.next_expected) {
                self.next_expected += 1;
            }
            self.gap_attempts = 0;
        }
    }

    /// Requests retransmission of the known delivery gap
    /// `[next_expected, highest_seq_seen]` from `target`, rate-limited with
    /// exponential backoff while no progress is made (see [`GAP_RETRY`]).
    fn request_gap(&mut self, now: SimTime, target: NodeId, actions: &mut Vec<BrisaAction>) {
        let backoff = GAP_RETRY * (1u64 << self.gap_attempts.min(GAP_BACKOFF_MAX));
        let due = self
            .last_gap_request
            .is_none_or(|t| now.saturating_since(t) >= backoff);
        if !due {
            return;
        }
        let Some(highest) = self.highest_seq_seen else {
            return;
        };
        if self.next_expected > highest {
            return;
        }
        self.last_gap_request = Some(now);
        self.gap_attempts += 1;
        self.stats.gap_retransmit_requests += 1;
        self.tel.gap_requests.inc();
        self.tel_event(
            now,
            TelEventKind::GapDetected,
            self.next_expected,
            highest - self.next_expected + 1,
        );
        self.tel_event(
            now,
            TelEventKind::RetransmitSent,
            target.0 as u64,
            self.next_expected,
        );
        actions.push(BrisaAction::Send {
            to: target,
            msg: BrisaMsg::Retransmit {
                from_seq: self.next_expected,
                to_seq: highest,
            },
        });
    }

    /// Updates our own position after delivering from (or switching to) an
    /// accepted parent and propagates depth changes to children in DAG mode.
    fn update_position(&mut self, guard: &CycleGuard, actions: &mut Vec<BrisaAction>) {
        let changed = self.cycle.position_after(self.me, guard);
        if changed && !self.cfg.mode.is_tree() {
            self.push_depth_update(actions);
        }
    }

    fn push_depth_update(&mut self, actions: &mut Vec<BrisaAction>) {
        if let Some(depth) = self.cycle.position() {
            for c in self.links.children() {
                actions.push(BrisaAction::Send {
                    to: c,
                    msg: BrisaMsg::DepthUpdate {
                        depth: depth as u32,
                    },
                });
            }
        }
    }

    /// Adopts `from` as a parent, completing any pending repair and asking
    /// the new parent for messages missed in the meantime.
    fn adopt(&mut self, now: SimTime, from: NodeId, actions: &mut Vec<BrisaAction>) {
        self.links.adopt_parent(from);
        self.last_parent_delivery = Some(now);
        self.tel.adopts.inc();
        self.tel
            .parent_count
            .record(self.links.parent_count() as u64);
        self.tel_event(
            now,
            TelEventKind::Adopt,
            from.0 as u64,
            self.links.parent_count() as u64,
        );
        if let Some((started, kind)) = self.pending_repair.take() {
            let delay = now.saturating_since(started).as_micros();
            self.tel.orphan_heals.inc();
            self.tel.orphan_us.record(delay);
            self.tel_event(now, TelEventKind::OrphanHealed, from.0 as u64, delay);
            match kind {
                RepairKind::Soft => {
                    self.stats.soft_repairs += 1;
                    self.tel.soft_repairs.inc();
                    self.stats.soft_repair_delays_us.push(delay);
                }
                RepairKind::Hard => {
                    self.stats.hard_repairs += 1;
                    self.tel.hard_repairs.inc();
                    self.stats.hard_repair_delays_us.push(delay);
                }
            }
            // Recover anything we missed while orphaned, starting from the
            // first hole in the delivered sequence (the adoption itself may
            // already have been triggered by a newer message). The
            // steady-state gap detector is told about this request so its
            // rate limit covers the adoption burst too.
            self.last_gap_request = Some(now);
            actions.push(BrisaAction::Send {
                to: from,
                msg: BrisaMsg::Retransmit {
                    from_seq: self.next_expected,
                    to_seq: u64::MAX,
                },
            });
        }
        self.check_construction(now);
    }

    /// Sends a deactivation for the inbound link from `peer` and updates the
    /// construction-time bookkeeping.
    fn deactivate(&mut self, now: SimTime, peer: NodeId, actions: &mut Vec<BrisaAction>) {
        self.deactivate_flagged(now, peer, false, actions);
    }

    /// [`Self::deactivate`] with an explicit symmetric flag: `symmetric`
    /// is set by the caller that *also* deactivates its own outbound link
    /// towards `peer` (Section II-E), telling the peer both directions are
    /// dead.
    fn deactivate_flagged(
        &mut self,
        now: SimTime,
        peer: NodeId,
        symmetric: bool,
        actions: &mut Vec<BrisaAction>,
    ) {
        let was_parent = self.links.is_parent(peer);
        self.links.deactivate_inbound(peer);
        self.stats.deactivations_sent += 1;
        self.tel.deactivations.inc();
        self.tel_event(now, TelEventKind::Deactivate, peer.0 as u64, 0);
        if self.stats.first_deactivation.is_none() {
            self.stats.first_deactivation = Some(now);
        }
        actions.push(BrisaAction::Send {
            to: peer,
            msg: BrisaMsg::Deactivate { symmetric },
        });
        let _ = was_parent;
        self.check_construction(now);
    }

    /// Runs the parent selection strategy over the current parents plus the
    /// duplicate sender `from`, deactivating whichever link loses
    /// (Figure 3).
    fn consider_replacement(
        &mut self,
        now: SimTime,
        from: NodeId,
        guard: &CycleGuard,
        actions: &mut Vec<BrisaAction>,
    ) {
        let target = self.cfg.mode.target_parents();
        // Replacing an existing parent is only considered when the candidate
        // sits strictly closer to the source than we do. Without this guard
        // two neighbors that mutually prefer each other (low RTT, high
        // uptime, ...) could re-parent onto one another concurrently — each
        // decision individually passes the cycle check against the other's
        // pre-switch metadata — and stitch a cycle that starves both
        // sub-trees.
        let sender_depth = match &guard {
            CycleGuard::Path(p) => p.len().saturating_sub(1),
            CycleGuard::Depth(d) => *d as usize,
        };
        let upward = match self.cycle.position() {
            None => true,
            Some(pos) => sender_depth < pos,
        };
        let mut pool: Vec<NodeId> = self.links.parents().collect();
        if !pool.contains(&from) {
            pool.push(from);
        }
        let selected = self.candidates.select(self.cfg.strategy, &pool, target);
        if upward && selected.contains(&from) {
            // `from` displaces the worst current parent(s).
            let losers: Vec<NodeId> = self
                .links
                .parents()
                .filter(|p| !selected.contains(p))
                .collect();
            for loser in losers {
                self.deactivate(now, loser, actions);
            }
            self.adopt(now, from, actions);
            // Our position now follows the new parent; children are updated
            // through the guards of the messages we relay next (tree mode)
            // or an explicit depth update (DAG mode).
            self.update_position(guard, actions);
        } else {
            // Symmetric deactivation (Section II-E): under first-come
            // first-picked we know we cannot be `from`'s parent either, so we
            // stop relaying to it without waiting for its deactivation — and
            // say so on the wire, so a stale parenthood on the other side
            // dies with the link.
            let symmetric = self.cfg.symmetric_deactivation
                && self.cfg.strategy == ParentStrategy::FirstComeFirstPicked
                && self.cfg.mode.is_tree();
            self.deactivate_flagged(now, from, symmetric, actions);
            if symmetric {
                self.links.deactivate_outbound(from);
            }
        }
    }

    /// True if no current parent has delivered stream data (nor been
    /// adopted) within [`PARENT_STALE_AFTER`].
    fn parents_stale(&self, now: SimTime) -> bool {
        self.last_parent_delivery
            .is_none_or(|t| now.saturating_since(t) >= PARENT_STALE_AFTER)
    }

    /// Re-parents onto `from` — a sender that just delivered a *first*
    /// reception while every incumbent parent was silent past the staleness
    /// window — when it sits strictly closer to the source than our own
    /// position (the anti-cycle upward guard of
    /// [`Self::consider_replacement`]). When the sender is not upward the
    /// link is simply left active: it keeps feeding us while the stale
    /// chain recovers, and an eventual true duplicate prunes it through
    /// the normal path.
    fn adopt_fresh_feeder(
        &mut self,
        now: SimTime,
        from: NodeId,
        guard: &CycleGuard,
        actions: &mut Vec<BrisaAction>,
    ) {
        let sender_depth = match guard {
            CycleGuard::Path(p) => p.len().saturating_sub(1),
            CycleGuard::Depth(d) => *d as usize,
        };
        let upward = match self.cycle.position() {
            None => true,
            Some(pos) => sender_depth < pos,
        };
        if !upward {
            return;
        }
        let losers: Vec<NodeId> = self.links.parents().filter(|p| *p != from).collect();
        for loser in losers {
            self.deactivate(now, loser, actions);
        }
        self.adopt(now, from, actions);
        self.update_position(guard, actions);
    }

    /// Starts the repair procedure after losing every parent: soft repair if
    /// any non-child neighbor can take over, hard repair (flood fallback plus
    /// re-activation orders) otherwise.
    fn start_repair(&mut self, now: SimTime, actions: &mut Vec<BrisaAction>) {
        let children = self.links.children();
        let non_children: Vec<NodeId> = self
            .links
            .neighbors()
            .filter(|n| !children.contains(n))
            .collect();
        self.last_repair_attempt = Some(now);
        if !non_children.is_empty() {
            self.pending_repair = Some((now, RepairKind::Soft));
            for n in non_children {
                self.links.reactivate_inbound(n);
                self.stats.activations_sent += 1;
                actions.push(BrisaAction::Send {
                    to: n,
                    msg: BrisaMsg::Activate,
                });
            }
        } else {
            self.pending_repair = Some((now, RepairKind::Hard));
            self.hard_repair_actions(actions);
        }
    }

    /// Performs the hard-repair steps of Section II-F: forget the position,
    /// re-activate every inbound link, and propagate a re-activation order to
    /// the children so the sub-tree re-bootstraps over flooding.
    fn hard_repair_actions(&mut self, actions: &mut Vec<BrisaAction>) {
        self.cycle.reset();
        self.links.reactivate_all_inbound();
        for n in self.links.neighbors().collect::<Vec<_>>() {
            self.stats.activations_sent += 1;
            actions.push(BrisaAction::Send {
                to: n,
                msg: BrisaMsg::Activate,
            });
        }
        for c in self.links.children() {
            self.stats.reactivation_orders_sent += 1;
            actions.push(BrisaAction::Send {
                to: c,
                msg: BrisaMsg::ReactivationOrder,
            });
        }
    }

    /// Periodic repair supervision, driven by the embedding stack's timer.
    ///
    /// Soft repairs that have not produced a parent within
    /// [`SOFT_REPAIR_TIMEOUT`] escalate to a hard repair (this covers the
    /// case where all the re-activated neighbors turn out to be descendants
    /// of the orphan, so no upstream traffic can ever reach it). Hard repairs
    /// are re-attempted every [`HARD_REPAIR_RETRY`] while the node remains
    /// orphaned, e.g. when the overlay itself is still being repaired by the
    /// PSS.
    pub fn repair_tick(&mut self, now: SimTime) -> Vec<BrisaAction> {
        let mut actions = Vec::new();
        // Stream-edge advertisement: once the data path has gone quiet
        // (the stream's tail, or an outage), tell the children where the
        // edge is, so a hole *after* their last reception — invisible to
        // the data-driven detector — becomes a known, requestable gap.
        // While data flows this stays silent: later messages reveal holes
        // on their own.
        if let Some(highest) = self.highest_seq_seen {
            let quiet = self
                .last_data_at
                .is_none_or(|t| now.saturating_since(t) >= EDGE_QUIET_AFTER);
            if quiet {
                let mut advertised = 0u64;
                for child in self.links.children() {
                    advertised += 1;
                    actions.push(BrisaAction::Send {
                        to: child,
                        msg: BrisaMsg::Edge { highest },
                    });
                }
                if advertised > 0 {
                    self.tel.edges_advertised.add(advertised);
                    self.tel_event(now, TelEventKind::EdgeAdvertised, highest, advertised);
                }
            }
        }
        // Tail-end loss recovery: when a known delivery gap persists (the
        // retransmission itself was lost, or an upstream node is still
        // catching up after a partition healed), keep re-requesting it from
        // a parent until it closes. Data receptions drive the detector in
        // steady state; this tick covers the case where nothing arrives at
        // all anymore.
        if self.pending_repair.is_none() && !self.is_source {
            let parent = self.links.parents().next();
            if let Some(parent) = parent {
                if self
                    .highest_seq_seen
                    .is_some_and(|h| self.next_expected <= h)
                {
                    self.request_gap(now, parent, &mut actions);
                }
            }
        }
        let Some((started, kind)) = self.pending_repair else {
            return actions;
        };
        if self.links.parent_count() > 0 || self.is_source {
            self.pending_repair = None;
            return actions;
        }
        let since_last = self
            .last_repair_attempt
            .map(|t| now.saturating_since(t))
            .unwrap_or(SimDuration::ZERO);
        match kind {
            RepairKind::Soft => {
                if now.saturating_since(started) >= SOFT_REPAIR_TIMEOUT {
                    self.pending_repair = Some((started, RepairKind::Hard));
                    self.last_repair_attempt = Some(now);
                    self.hard_repair_actions(&mut actions);
                }
            }
            RepairKind::Hard => {
                if since_last >= HARD_REPAIR_RETRY {
                    self.last_repair_attempt = Some(now);
                    self.hard_repair_actions(&mut actions);
                }
            }
        }
        actions
    }

    fn relay(
        &mut self,
        now: SimTime,
        data: &DataMsg,
        exclude: Option<NodeId>,
        actions: &mut Vec<BrisaAction>,
    ) {
        let copy = self.relayed_copy(now, data);
        for peer in self.links.outbound_active() {
            if Some(peer) == exclude {
                continue;
            }
            actions.push(BrisaAction::Send {
                to: peer,
                msg: BrisaMsg::Data(copy.clone()),
            });
        }
    }

    fn check_construction(&mut self, now: SimTime) {
        if self.stats.first_deactivation.is_some()
            && self.stats.construction_done.is_none()
            && self.links.inbound_active_count() <= self.cfg.mode.target_parents()
        {
            self.stats.construction_done = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StructureMode;
    use crate::cycle::CycleGuard;
    use crate::parent::NoTelemetry;
    use brisa_simnet::SimDuration;
    use std::collections::{HashMap, VecDeque};

    /// Instant-delivery harness driving a set of BrisaCore instances over a
    /// fixed topology (no membership protocol involved).
    struct Mesh {
        nodes: HashMap<NodeId, BrisaCore>,
        /// (from, to, msg) queue; FIFO order defines arrival order.
        queue: VecDeque<(NodeId, NodeId, BrisaMsg)>,
        now: SimTime,
        /// Per-hop delay applied each time the queue is drained one step.
        hop_delay: SimDuration,
    }

    impl Mesh {
        fn new(cfg: &BrisaConfig, topology: &[(u32, u32)], n: u32) -> Self {
            let mut nodes: HashMap<NodeId, BrisaCore> = (0..n)
                .map(|i| (NodeId(i), BrisaCore::new(NodeId(i), cfg.clone())))
                .collect();
            for (a, b) in topology {
                nodes
                    .get_mut(&NodeId(*a))
                    .unwrap()
                    .on_neighbor_up(NodeId(*b));
                nodes
                    .get_mut(&NodeId(*b))
                    .unwrap()
                    .on_neighbor_up(NodeId(*a));
            }
            for (id, node) in nodes.iter_mut() {
                node.note_started(SimTime::ZERO);
                if *id == NodeId(0) {
                    node.mark_source();
                }
            }
            Mesh {
                nodes,
                queue: VecDeque::new(),
                now: SimTime::ZERO,
                hop_delay: SimDuration::from_millis(1),
            }
        }

        fn publish(&mut self, payload: usize) {
            self.now += self.hop_delay;
            let actions = self
                .nodes
                .get_mut(&NodeId(0))
                .unwrap()
                .publish(self.now, payload);
            self.enqueue(NodeId(0), actions);
            self.drain();
        }

        fn enqueue(&mut self, from: NodeId, actions: Vec<BrisaAction>) {
            for a in actions {
                if let BrisaAction::Send { to, msg } = a {
                    self.queue.push_back((from, to, msg));
                }
            }
        }

        fn drain(&mut self) {
            let mut steps = 0;
            while let Some((from, to, msg)) = self.queue.pop_front() {
                steps += 1;
                assert!(steps < 1_000_000, "mesh did not quiesce");
                self.now += self.hop_delay;
                if !self.nodes.contains_key(&to) {
                    continue; // crashed node
                }
                let actions =
                    self.nodes
                        .get_mut(&to)
                        .unwrap()
                        .handle(self.now, from, msg, &NoTelemetry);
                self.enqueue(to, actions);
            }
        }

        fn crash(&mut self, id: NodeId) {
            self.nodes.remove(&id);
            self.now += self.hop_delay;
            let survivors: Vec<NodeId> = self.nodes.keys().copied().collect();
            for s in survivors {
                let node = self.nodes.get_mut(&s).unwrap();
                if node.links().is_neighbor(id) {
                    let actions = node.on_neighbor_down(self.now, id);
                    self.enqueue(s, actions);
                }
            }
            self.drain();
        }

        fn node(&self, id: u32) -> &BrisaCore {
            &self.nodes[&NodeId(id)]
        }

        /// Checks that following parents from every node reaches the source
        /// without revisiting a node (i.e. the structure is acyclic and
        /// rooted).
        fn assert_rooted(&self) {
            for (id, node) in &self.nodes {
                if node.is_source() {
                    continue;
                }
                let mut cur = *id;
                let mut hops = 0;
                loop {
                    let parents = self.nodes[&cur].parents();
                    assert!(
                        !parents.is_empty(),
                        "{cur} has no parent while walking up from {id}"
                    );
                    cur = parents[0];
                    hops += 1;
                    assert!(
                        hops <= self.nodes.len(),
                        "cycle detected walking up from {id}"
                    );
                    if self.nodes[&cur].is_source() {
                        break;
                    }
                }
            }
        }
    }

    /// A clique over `n` nodes.
    fn clique(n: u32) -> Vec<(u32, u32)> {
        let mut t = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                t.push((i, j));
            }
        }
        t
    }

    #[test]
    fn tree_emerges_and_eliminates_duplicates() {
        let cfg = BrisaConfig::default();
        let mut mesh = Mesh::new(&cfg, &clique(6), 6);
        mesh.publish(100); // bootstrap flood
        let bootstrap_dups: u64 = (1..6).map(|i| mesh.node(i).stats().duplicates).sum();
        assert!(
            bootstrap_dups > 0,
            "the flood necessarily causes duplicates"
        );
        mesh.assert_rooted();
        for i in 1..6 {
            assert_eq!(
                mesh.node(i).parents().len(),
                1,
                "tree keeps exactly one parent"
            );
        }
        // Subsequent messages travel the tree: no further duplicates.
        for _ in 0..10 {
            mesh.publish(100);
        }
        let later_dups: u64 = (1..6).map(|i| mesh.node(i).stats().duplicates).sum();
        assert_eq!(
            later_dups, bootstrap_dups,
            "no duplicates after the tree stabilises"
        );
        for i in 1..6 {
            assert_eq!(
                mesh.node(i).stats().delivered,
                11,
                "every message delivered"
            );
        }
    }

    #[test]
    fn construction_time_is_recorded() {
        let cfg = BrisaConfig::default();
        let mut mesh = Mesh::new(&cfg, &clique(5), 5);
        mesh.publish(10);
        for i in 1..5 {
            let st = mesh.node(i).stats();
            assert!(
                st.first_deactivation.is_some(),
                "node {i} sent deactivations"
            );
            assert!(
                st.construction_done.is_some(),
                "node {i} finished construction"
            );
            assert!(st.construction_time().unwrap() >= SimDuration::ZERO);
        }
    }

    #[test]
    fn dag_mode_collects_multiple_parents() {
        let cfg = BrisaConfig::dag(2, ParentStrategy::FirstComeFirstPicked);
        let mut mesh = Mesh::new(&cfg, &clique(8), 8);
        for _ in 0..3 {
            mesh.publish(50);
        }
        let multi = (1..8)
            .filter(|&i| mesh.node(i).parents().len() == 2)
            .count();
        assert!(
            multi >= 5,
            "most nodes should find two parents, got {multi}"
        );
        for i in 1..8 {
            let p = mesh.node(i).parents().len();
            assert!((1..=2).contains(&p), "parent count within bounds, got {p}");
            assert!(mesh.node(i).depth().is_some());
        }
        // Once the DAG has stabilised, duplicates per message are bounded by
        // the extra parent: at most one duplicate per message per node.
        let before: Vec<u64> = (1..8).map(|i| mesh.node(i).stats().duplicates).collect();
        let extra_msgs = 10u64;
        for _ in 0..extra_msgs {
            mesh.publish(50);
        }
        for (idx, i) in (1..8).enumerate() {
            let added = mesh.node(i).stats().duplicates - before[idx];
            assert!(
                added <= extra_msgs,
                "node {i} saw {added} duplicates over {extra_msgs} stabilised messages"
            );
        }
    }

    #[test]
    fn source_deactivates_inbound_traffic() {
        // A source that receives stream data (e.g. from a neighbor whose
        // parent is elsewhere in the overlay) tells the sender to stop: the
        // root needs no inbound links.
        let cfg = BrisaConfig::default();
        let mut source = BrisaCore::new(NodeId(0), cfg);
        source.mark_source();
        source.note_started(SimTime::ZERO);
        source.on_neighbor_up(NodeId(1));
        let _ = source.publish(SimTime::from_millis(1), 10);
        let actions = source.handle(
            SimTime::from_millis(5),
            NodeId(1),
            BrisaMsg::data(DataMsg {
                seq: 0,
                payload_bytes: 10,
                guard: CycleGuard::Path(vec![NodeId(0), NodeId(1)]),
                sender_uptime_secs: 0,
                sender_load: 0,
            }),
            &NoTelemetry,
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            BrisaAction::Send {
                to: NodeId(1),
                msg: BrisaMsg::Deactivate { .. }
            }
        )));
        assert_eq!(source.links().inbound_active_count(), 0);
        assert_eq!(source.parents().len(), 0);
        assert_eq!(source.stats().duplicates, 1);
    }

    #[test]
    fn ineligible_sender_is_deactivated_not_adopted() {
        let cfg = BrisaConfig::default();
        let mut core = BrisaCore::new(NodeId(5), cfg);
        core.note_started(SimTime::ZERO);
        core.on_neighbor_up(NodeId(1));
        // The sender's path already contains us: adopting it would create a
        // cycle.
        let msg = BrisaMsg::data(DataMsg {
            seq: 0,
            payload_bytes: 10,
            guard: CycleGuard::Path(vec![NodeId(0), NodeId(5), NodeId(1)]),
            sender_uptime_secs: 0,
            sender_load: 0,
        });
        let actions = core.handle(SimTime::from_millis(1), NodeId(1), msg, &NoTelemetry);
        assert!(core.parents().is_empty());
        assert!(actions.iter().any(|a| matches!(
            a,
            BrisaAction::Send {
                to: NodeId(1),
                msg: BrisaMsg::Deactivate { .. }
            }
        )));
        // Still delivered to the application exactly once.
        assert_eq!(core.stats().delivered, 1);
    }

    #[test]
    fn duplicate_triggers_deactivation_and_symmetric_optimisation() {
        let cfg = BrisaConfig::default();
        let mut core = BrisaCore::new(NodeId(9), cfg);
        core.note_started(SimTime::ZERO);
        core.on_neighbor_up(NodeId(1));
        core.on_neighbor_up(NodeId(2));
        let data = |from_path: Vec<NodeId>| {
            BrisaMsg::data(DataMsg {
                seq: 0,
                payload_bytes: 10,
                guard: CycleGuard::Path(from_path),
                sender_uptime_secs: 0,
                sender_load: 0,
            })
        };
        let a1 = core.handle(
            SimTime::from_millis(1),
            NodeId(1),
            data(vec![NodeId(0), NodeId(1)]),
            &NoTelemetry,
        );
        assert_eq!(core.parents(), vec![NodeId(1)]);
        assert!(a1
            .iter()
            .any(|a| matches!(a, BrisaAction::Deliver { seq: 0 })));
        let a2 = core.handle(
            SimTime::from_millis(2),
            NodeId(2),
            data(vec![NodeId(0), NodeId(2)]),
            &NoTelemetry,
        );
        // First-come keeps node 1; node 2 is deactivated, and thanks to the
        // symmetric optimisation we also stop relaying to node 2.
        assert_eq!(core.parents(), vec![NodeId(1)]);
        assert!(a2.iter().any(|a| matches!(
            a,
            BrisaAction::Send {
                to: NodeId(2),
                msg: BrisaMsg::Deactivate { .. }
            }
        )));
        assert!(!core.links().is_outbound_active(NodeId(2)));
        assert_eq!(core.stats().duplicates, 1);
    }

    #[test]
    fn delay_aware_strategy_switches_to_faster_parent() {
        struct Rtt;
        impl NeighborTelemetry for Rtt {
            fn rtt(&self, peer: NodeId) -> Option<SimDuration> {
                match peer.0 {
                    1 => Some(SimDuration::from_millis(80)),
                    2 => Some(SimDuration::from_millis(5)),
                    _ => None,
                }
            }
        }
        let cfg = BrisaConfig::tree(ParentStrategy::DelayAware);
        let mut core = BrisaCore::new(NodeId(9), cfg);
        core.note_started(SimTime::ZERO);
        core.on_neighbor_up(NodeId(1));
        core.on_neighbor_up(NodeId(2));
        let data = |path: Vec<NodeId>| {
            BrisaMsg::data(DataMsg {
                seq: 0,
                payload_bytes: 10,
                guard: CycleGuard::Path(path),
                sender_uptime_secs: 0,
                sender_load: 0,
            })
        };
        core.handle(
            SimTime::from_millis(1),
            NodeId(1),
            data(vec![NodeId(0), NodeId(1)]),
            &Rtt,
        );
        assert_eq!(core.parents(), vec![NodeId(1)]);
        let actions = core.handle(
            SimTime::from_millis(2),
            NodeId(2),
            data(vec![NodeId(0), NodeId(2)]),
            &Rtt,
        );
        // The slower first parent is displaced by the faster duplicate sender.
        assert_eq!(core.parents(), vec![NodeId(2)]);
        assert!(actions.iter().any(|a| matches!(
            a,
            BrisaAction::Send {
                to: NodeId(1),
                msg: BrisaMsg::Deactivate { .. }
            }
        )));
    }

    #[test]
    fn parent_failure_with_alternative_neighbor_uses_soft_repair() {
        let cfg = BrisaConfig::default();
        let mut mesh = Mesh::new(&cfg, &clique(6), 6);
        for _ in 0..3 {
            mesh.publish(10);
        }
        mesh.assert_rooted();
        // Fail the parent of some non-source node that has other neighbors.
        let victim = mesh.node(3).parents()[0];
        if victim == NodeId(0) {
            // Failing the source would stop the stream; pick a different test
            // subject in that case.
            return;
        }
        mesh.crash(victim);
        // Keep the stream alive so selection can complete.
        for _ in 0..3 {
            mesh.publish(10);
        }
        mesh.assert_rooted();
        let total_soft: u64 = mesh.nodes.values().map(|n| n.stats().soft_repairs).sum();
        let total_orphans: usize = mesh.nodes.values().map(|n| n.stats().orphaned.len()).sum();
        assert!(total_orphans > 0, "the crash orphaned someone");
        assert!(total_soft > 0, "in a clique every orphan repairs softly");
        // All messages are eventually delivered everywhere despite the crash.
        for (_, node) in mesh.nodes.iter().filter(|(_, n)| !n.is_source()) {
            assert_eq!(
                node.stats().delivered,
                6,
                "no message lost across the repair"
            );
        }
    }

    #[test]
    fn isolated_pair_falls_back_to_hard_repair_path() {
        // Topology: 0 (source) - 1 - 2 - 3 in a line; node 3's only neighbor
        // is node 2, and node 2's parent is node 1. When node 1 fails, node 2
        // has only its child (3) left -> hard repair with a re-activation
        // order propagated to 3.
        let cfg = BrisaConfig::default();
        let mut mesh = Mesh::new(&cfg, &[(0, 1), (1, 2), (2, 3)], 4);
        for _ in 0..2 {
            mesh.publish(10);
        }
        assert_eq!(mesh.node(2).parents(), vec![NodeId(1)]);
        assert_eq!(mesh.node(3).parents(), vec![NodeId(2)]);
        mesh.crash(NodeId(1));
        let st2 = mesh.node(2).stats();
        assert_eq!(st2.orphaned.len(), 1);
        assert!(
            st2.reactivation_orders_sent >= 1,
            "hard repair orders the child to re-activate"
        );
        assert!(
            mesh.node(2).repair_pending(),
            "no replacement parent exists in this topology"
        );
    }

    #[test]
    fn retransmission_recovers_missed_messages() {
        let cfg = BrisaConfig::default();
        // Parent (node 0, source) and child (node 1), plus node 2 connected
        // to both: 2's parent will be 0 or 1.
        let mut mesh = Mesh::new(&cfg, &clique(3), 3);
        for _ in 0..5 {
            mesh.publish(10);
        }
        mesh.assert_rooted();
        // Detach node 2 from its parent by failing it, but only if the parent
        // is node 1 (so the source keeps publishing).
        if mesh.node(2).parents() == vec![NodeId(1)] {
            mesh.crash(NodeId(1));
            // Publish more; node 2 repairs onto the source and must recover
            // anything missed plus receive the new messages.
            for _ in 0..5 {
                mesh.publish(10);
            }
            assert_eq!(mesh.node(2).stats().delivered, 10);
            assert!(mesh.node(2).stats().soft_repairs + mesh.node(2).stats().hard_repairs >= 1);
        }
    }

    #[test]
    fn gap_in_stream_triggers_rate_limited_retransmit_request() {
        let cfg = BrisaConfig::default();
        let mut core = BrisaCore::new(NodeId(9), cfg);
        core.note_started(SimTime::ZERO);
        core.on_neighbor_up(NodeId(1));
        let data = |seq: u64| {
            BrisaMsg::data(DataMsg {
                seq,
                payload_bytes: 10,
                guard: CycleGuard::Path(vec![NodeId(0), NodeId(1)]),
                sender_uptime_secs: 0,
                sender_load: 0,
            })
        };
        let retransmits = |actions: &[BrisaAction]| -> Vec<(u64, u64)> {
            actions
                .iter()
                .filter_map(|a| match a {
                    BrisaAction::Send {
                        msg: BrisaMsg::Retransmit { from_seq, to_seq },
                        ..
                    } => Some((*from_seq, *to_seq)),
                    _ => None,
                })
                .collect()
        };
        // Seq 0 delivered in order: no gap, no request.
        let a0 = core.handle(SimTime::from_millis(1), NodeId(1), data(0), &NoTelemetry);
        assert!(retransmits(&a0).is_empty());
        // Seq 3 arrives: 1 and 2 are missing -> one request covering the gap.
        let a3 = core.handle(SimTime::from_millis(5), NodeId(1), data(3), &NoTelemetry);
        assert_eq!(retransmits(&a3), vec![(1, 3)]);
        assert_eq!(core.stats().gap_retransmit_requests, 1);
        // Another newer message within the retry window: rate-limited.
        let a4 = core.handle(SimTime::from_millis(9), NodeId(1), data(4), &NoTelemetry);
        assert!(retransmits(&a4).is_empty());
        // The gap persists: the maintenance tick re-requests from the
        // parent once the backed-off retry interval (doubled after the
        // first fruitless attempt) has elapsed.
        let early = core.repair_tick(SimTime::from_millis(5) + GAP_RETRY);
        assert!(
            retransmits(&early).is_empty(),
            "the second attempt backs off beyond the base interval"
        );
        let tick = core.repair_tick(SimTime::from_millis(5) + GAP_RETRY * 2);
        assert_eq!(retransmits(&tick), vec![(1, 4)]);
        // The retransmitted messages close the gap; the detector goes quiet.
        for seq in [1, 2] {
            let _ = core.handle(SimTime::from_secs(2), NodeId(1), data(seq), &NoTelemetry);
        }
        let quiet = core.repair_tick(SimTime::from_secs(10));
        assert!(retransmits(&quiet).is_empty());
        assert_eq!(core.stats().delivered, 5);
        assert_eq!(core.stats().gap_retransmit_requests, 2);
    }

    /// A hole at the stream's tail is invisible to the data-driven gap
    /// detector (nothing later ever arrives to reveal it); an [`Edge`]
    /// advertisement from upstream turns it into a known, requestable gap.
    #[test]
    fn edge_advertisement_reveals_a_tail_hole() {
        let cfg = BrisaConfig::default();
        let mut core = BrisaCore::new(NodeId(9), cfg);
        core.note_started(SimTime::ZERO);
        core.on_neighbor_up(NodeId(1));
        for seq in 0..3 {
            let _ = core.handle(
                SimTime::from_millis(seq * 10),
                NodeId(1),
                BrisaMsg::data(DataMsg {
                    seq,
                    payload_bytes: 10,
                    guard: CycleGuard::Path(vec![NodeId(0), NodeId(1)]),
                    sender_uptime_secs: 0,
                    sender_load: 0,
                }),
                &NoTelemetry,
            );
        }
        // Seq 3 (the stream's last message) was lost on our link; nothing
        // reveals it, so the repair tick alone requests nothing.
        let blind = core.repair_tick(SimTime::from_secs(5));
        assert!(
            !blind.iter().any(|a| matches!(
                a,
                BrisaAction::Send {
                    msg: BrisaMsg::Retransmit { .. },
                    ..
                }
            )),
            "no known gap yet — the tail hole is invisible"
        );
        // The parent's edge advertisement makes the hole a known gap.
        let revealed = core.handle(
            SimTime::from_secs(6),
            NodeId(1),
            BrisaMsg::Edge { highest: 3 },
            &NoTelemetry,
        );
        let requested: Vec<(u64, u64)> = revealed
            .iter()
            .filter_map(|a| match a {
                BrisaAction::Send {
                    to: NodeId(1),
                    msg: BrisaMsg::Retransmit { from_seq, to_seq },
                } => Some((*from_seq, *to_seq)),
                _ => None,
            })
            .collect();
        assert_eq!(requested, vec![(3, 3)]);
        // A caught-up node ignores further advertisements.
        let _ = core.handle(
            SimTime::from_secs(7),
            NodeId(1),
            BrisaMsg::data(DataMsg {
                seq: 3,
                payload_bytes: 10,
                guard: CycleGuard::Path(vec![NodeId(0), NodeId(1)]),
                sender_uptime_secs: 0,
                sender_load: 0,
            }),
            &NoTelemetry,
        );
        let settled = core.handle(
            SimTime::from_secs(20),
            NodeId(1),
            BrisaMsg::Edge { highest: 3 },
            &NoTelemetry,
        );
        assert!(settled.is_empty(), "caught up — nothing to request");
        assert_eq!(core.stats().delivered, 4);
    }

    /// The advertisement itself is quiescence-gated: a relay streams data
    /// without edge chatter, and starts advertising to its children only
    /// once the data path has been quiet for [`EDGE_QUIET_AFTER`].
    #[test]
    fn edge_advertisement_waits_for_quiescence() {
        let cfg = BrisaConfig::default();
        let mut source = BrisaCore::new(NodeId(0), cfg);
        source.mark_source();
        source.note_started(SimTime::ZERO);
        source.on_neighbor_up(NodeId(1));
        let _ = source.publish(SimTime::from_millis(100), 10);
        let edges = |actions: &[BrisaAction]| -> Vec<u64> {
            actions
                .iter()
                .filter_map(|a| match a {
                    BrisaAction::Send {
                        msg: BrisaMsg::Edge { highest },
                        ..
                    } => Some(*highest),
                    _ => None,
                })
                .collect()
        };
        // Mid-stream (data just moved): silent.
        let busy = source.repair_tick(SimTime::from_millis(200));
        assert!(edges(&busy).is_empty(), "data is flowing — no edge chatter");
        // Quiet past the threshold: the edge goes out to every child.
        let quiet = source.repair_tick(SimTime::from_millis(100) + EDGE_QUIET_AFTER);
        assert_eq!(edges(&quiet), vec![0]);
    }

    #[test]
    fn retransmit_request_is_served_from_buffer() {
        let cfg = BrisaConfig::default();
        let mut source = BrisaCore::new(NodeId(0), cfg);
        source.mark_source();
        source.note_started(SimTime::ZERO);
        source.on_neighbor_up(NodeId(1));
        for i in 0..4 {
            let _ = source.publish(SimTime::from_millis(i), 10);
        }
        let served = source.handle(
            SimTime::from_secs(1),
            NodeId(1),
            BrisaMsg::Retransmit {
                from_seq: 1,
                to_seq: 2,
            },
            &NoTelemetry,
        );
        let seqs: Vec<u64> = served
            .iter()
            .filter_map(|a| match a {
                BrisaAction::Send {
                    to: NodeId(1),
                    msg: BrisaMsg::Data(d),
                } => Some(d.seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(source.stats().retransmissions_served, 2);
    }

    #[test]
    fn gerontocratic_prefers_older_sender() {
        let cfg = BrisaConfig::tree(ParentStrategy::Gerontocratic);
        let mut core = BrisaCore::new(NodeId(9), cfg);
        core.note_started(SimTime::ZERO);
        core.on_neighbor_up(NodeId(1));
        core.on_neighbor_up(NodeId(2));
        let data = |path: Vec<NodeId>, uptime: u32| {
            BrisaMsg::data(DataMsg {
                seq: 0,
                payload_bytes: 10,
                guard: CycleGuard::Path(path),
                sender_uptime_secs: uptime,
                sender_load: 0,
            })
        };
        core.handle(
            SimTime::from_millis(1),
            NodeId(1),
            data(vec![NodeId(0), NodeId(1)], 10),
            &NoTelemetry,
        );
        core.handle(
            SimTime::from_millis(2),
            NodeId(2),
            data(vec![NodeId(0), NodeId(2)], 500),
            &NoTelemetry,
        );
        assert_eq!(core.parents(), vec![NodeId(2)], "older sender wins");
    }

    #[test]
    fn dag_depth_update_propagates_to_children() {
        let cfg = BrisaConfig::dag(2, ParentStrategy::FirstComeFirstPicked);
        let mut core = BrisaCore::new(NodeId(5), cfg);
        core.note_started(SimTime::ZERO);
        core.on_neighbor_up(NodeId(1));
        core.on_neighbor_up(NodeId(7)); // will remain a child
        let d = BrisaMsg::data(DataMsg {
            seq: 0,
            payload_bytes: 10,
            guard: CycleGuard::Depth(1),
            sender_uptime_secs: 0,
            sender_load: 0,
        });
        let _ = core.handle(SimTime::from_millis(1), NodeId(1), d, &NoTelemetry);
        assert_eq!(core.depth(), Some(2));
        // The parent moves deeper and tells us.
        let actions = core.handle(
            SimTime::from_millis(3),
            NodeId(1),
            BrisaMsg::DepthUpdate { depth: 4 },
            &NoTelemetry,
        );
        assert_eq!(core.depth(), Some(5));
        assert!(actions.iter().any(|a| matches!(
            a,
            BrisaAction::Send {
                to: NodeId(7),
                msg: BrisaMsg::DepthUpdate { depth: 5 }
            }
        )));
    }

    #[test]
    fn activate_reenables_outbound_relay() {
        let cfg = BrisaConfig::default();
        let mut core = BrisaCore::new(NodeId(5), cfg);
        core.note_started(SimTime::ZERO);
        core.on_neighbor_up(NodeId(1));
        core.on_neighbor_up(NodeId(2));
        let _ = core.handle(
            SimTime::from_millis(1),
            NodeId(2),
            BrisaMsg::Deactivate { symmetric: false },
            &NoTelemetry,
        );
        assert!(!core.links().is_outbound_active(NodeId(2)));
        let _ = core.handle(
            SimTime::from_millis(2),
            NodeId(2),
            BrisaMsg::Activate,
            &NoTelemetry,
        );
        assert!(core.links().is_outbound_active(NodeId(2)));
    }

    #[test]
    fn target_parents_reflected_in_mode() {
        let t = BrisaCore::new(NodeId(0), BrisaConfig::default());
        assert_eq!(t.config().mode, StructureMode::Tree);
        let d = BrisaCore::new(NodeId(0), BrisaConfig::dag(3, ParentStrategy::DelayAware));
        assert_eq!(d.config().mode.target_parents(), 3);
    }
}
