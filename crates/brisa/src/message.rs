//! BRISA wire messages.

use crate::cycle::CycleGuard;
use brisa_simnet::{NodeId, WireSize};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Fixed per-message overhead (type tag, stream id, framing) charged for
/// every BRISA message.
pub const BRISA_HEADER_BYTES: usize = 16;

/// A stream data message as relayed between nodes.
///
/// The payload itself is an opaque bit string in the paper's evaluation, so
/// only its size is carried here; the simulator charges
/// `BRISA_HEADER_BYTES + metadata + payload_bytes` per transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataMsg {
    /// Sequence number of the message within the stream (0-based).
    pub seq: u64,
    /// Application payload size in bytes.
    pub payload_bytes: usize,
    /// Cycle-prevention metadata: the sender's path from the source (tree
    /// mode) or the sender's depth (DAG mode).
    pub guard: CycleGuard,
    /// Uptime of the sender in simulated seconds, used by the gerontocratic
    /// parent selection strategy.
    pub sender_uptime_secs: u32,
    /// Number of children the sender currently serves, used by the
    /// load-balancing parent selection strategy.
    pub sender_load: u16,
}

/// Messages exchanged by the BRISA dissemination layer.
///
/// The data variant is reference-counted: relaying a stream message to `k`
/// children builds the [`DataMsg`] (guard, metadata, payload accounting)
/// once and fans it out with `k` cheap `Arc` clones, instead of cloning the
/// whole message — including the path-embedding vector — per child. The
/// simulator still charges the full [`WireSize`] per transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BrisaMsg {
    /// A stream message (possibly the bootstrap flood of the first one).
    Data(Arc<DataMsg>),
    /// "Stop relaying stream data to me": the receiver marks its outgoing
    /// link towards the sender as inactive.
    Deactivate {
        /// True when the sender *also* deactivated its own outgoing link
        /// towards the receiver (the symmetric deactivation optimisation of
        /// Section II-E). The flag makes the optimisation sound: a receiver
        /// that considered the sender its parent learns the parenthood is
        /// dead — without it the reverse link dies silently and a stale
        /// parent pointer starves the receiver for good (an interleaving
        /// the live runtime's wall-clock schedules actually produce).
        symmetric: bool,
    },
    /// "Resume relaying stream data to me": the receiver marks its outgoing
    /// link towards the sender as active again (used by the repair
    /// mechanisms).
    Activate,
    /// Hard-repair propagation: the sender (a parent that became an orphan
    /// and re-bootstrapped) asks the receiver (one of its children) to
    /// re-activate its own inbound links, and to propagate further down if
    /// it cannot find a replacement parent in its active view.
    ReactivationOrder,
    /// The sender's depth changed (DAG mode); children update their own
    /// depth accordingly.
    DepthUpdate {
        /// The sender's new depth.
        depth: u32,
    },
    /// Request retransmission of buffered messages with sequence numbers in
    /// `[from_seq, to_seq]` (inclusive), sent to a newly adopted parent
    /// after a repair.
    Retransmit {
        /// First missing sequence number.
        from_seq: u64,
        /// Last sequence number known to exist.
        to_seq: u64,
    },
    /// Stream-edge advertisement, sent to children on the repair tick once
    /// the sender's data path has gone quiet. Gap detection is data-driven
    /// (a hole is revealed by a *later* message), which leaves one blind
    /// spot: a message lost at the stream's tail is followed by nothing, so
    /// the victim never learns it exists. Advertising the edge closes the
    /// blind spot — a receiver behind the advertised edge treats it as a
    /// known gap and re-requests from the advertiser's buffer.
    Edge {
        /// Highest sequence number the sender has seen.
        highest: u64,
    },
}

impl WireSize for BrisaMsg {
    fn wire_size(&self) -> usize {
        let body = match self {
            BrisaMsg::Data(d) => 8 + 4 + 4 + 2 + d.guard.wire_size() + d.payload_bytes,
            BrisaMsg::Deactivate { .. } => 1,
            BrisaMsg::Activate | BrisaMsg::ReactivationOrder => 0,
            BrisaMsg::DepthUpdate { .. } => 4,
            BrisaMsg::Retransmit { .. } => 16,
            BrisaMsg::Edge { .. } => 8,
        };
        BRISA_HEADER_BYTES + body
    }
}

impl BrisaMsg {
    /// Wraps a freshly built [`DataMsg`] into the shared-payload variant.
    pub fn data(msg: DataMsg) -> Self {
        BrisaMsg::Data(Arc::new(msg))
    }

    /// Convenience accessor for the data payload.
    pub fn as_data(&self) -> Option<&DataMsg> {
        match self {
            BrisaMsg::Data(d) => Some(d),
            _ => None,
        }
    }
}

/// An action produced by the BRISA state machine, to be executed by the
/// embedding stack.
#[derive(Debug, Clone, PartialEq)]
pub enum BrisaAction {
    /// Send `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// Message.
        msg: BrisaMsg,
    },
    /// The stream message with this sequence number was delivered to the
    /// application for the first time.
    Deliver {
        /// Sequence number delivered.
        seq: u64,
    },
}

/// Convenience filter: the destinations and messages of all `Send` actions.
pub fn sends(actions: &[BrisaAction]) -> Vec<(NodeId, &BrisaMsg)> {
    actions
        .iter()
        .filter_map(|a| match a {
            BrisaAction::Send { to, msg } => Some((*to, msg)),
            BrisaAction::Deliver { .. } => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seq: u64, payload: usize, guard: CycleGuard) -> DataMsg {
        DataMsg {
            seq,
            payload_bytes: payload,
            guard,
            sender_uptime_secs: 0,
            sender_load: 0,
        }
    }

    #[test]
    fn data_wire_size_includes_payload_and_guard() {
        let small = BrisaMsg::data(data(0, 1024, CycleGuard::Depth(3)));
        let big = BrisaMsg::data(data(0, 10 * 1024, CycleGuard::Depth(3)));
        assert_eq!(big.wire_size() - small.wire_size(), 9 * 1024);
        let path_guard = BrisaMsg::data(data(
            0,
            1024,
            CycleGuard::Path(vec![NodeId(0), NodeId(1), NodeId(2)]),
        ));
        // A 3-hop path guard (kind + count + entries) replaces the 5-byte
        // depth guard (kind + u32).
        assert_eq!(
            path_guard.wire_size() - small.wire_size(),
            (1 + 2 + 3 * NodeId::WIRE_SIZE) - 5
        );
    }

    #[test]
    fn control_messages_are_small() {
        assert!(BrisaMsg::Deactivate { symmetric: true }.wire_size() <= 2 * BRISA_HEADER_BYTES);
        assert!(BrisaMsg::Activate.wire_size() <= 2 * BRISA_HEADER_BYTES);
        assert!(BrisaMsg::ReactivationOrder.wire_size() <= 2 * BRISA_HEADER_BYTES);
        assert_eq!(
            BrisaMsg::Retransmit {
                from_seq: 1,
                to_seq: 5
            }
            .wire_size(),
            BRISA_HEADER_BYTES + 16
        );
    }

    #[test]
    fn as_data_and_sends_helpers() {
        let d = BrisaMsg::data(data(7, 10, CycleGuard::Depth(0)));
        assert_eq!(d.as_data().unwrap().seq, 7);
        assert!(BrisaMsg::Activate.as_data().is_none());
        let actions = vec![
            BrisaAction::Send {
                to: NodeId(1),
                msg: BrisaMsg::Deactivate { symmetric: false },
            },
            BrisaAction::Deliver { seq: 3 },
            BrisaAction::Send {
                to: NodeId(2),
                msg: BrisaMsg::Activate,
            },
        ];
        let s = sends(&actions);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, NodeId(1));
        assert_eq!(s[1].0, NodeId(2));
    }
}
