//! Per-neighbor link state.
//!
//! BRISA never removes entries from the HyParView active view; it only marks
//! links as *active* or *inactive* for the purpose of stream dissemination
//! (Section II-C). Each node tracks, for every overlay neighbor:
//!
//! * whether the neighbor is one of its **parents** (selected inbound links);
//! * whether the node has asked the neighbor to stop relaying to it
//!   (**inbound deactivated**);
//! * whether the neighbor has asked this node to stop relaying to it
//!   (**outbound inactive**).
//!
//! Children are the neighbors with an active outbound link that are not
//! parents; they determine the node's degree in the emerged structure.

use brisa_simnet::NodeId;
use std::collections::BTreeSet;

/// Dissemination link state towards every current overlay neighbor.
#[derive(Debug, Clone, Default)]
pub struct Links {
    neighbors: BTreeSet<NodeId>,
    parents: BTreeSet<NodeId>,
    inbound_deactivated: BTreeSet<NodeId>,
    outbound_inactive: BTreeSet<NodeId>,
}

impl Links {
    /// Creates an empty link table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new overlay neighbor. New links start fully active in
    /// both directions ("BRISA automatically marks links to new nodes as
    /// active", Section II-F).
    pub fn neighbor_up(&mut self, peer: NodeId) {
        self.neighbors.insert(peer);
        self.inbound_deactivated.remove(&peer);
        self.outbound_inactive.remove(&peer);
    }

    /// Removes an overlay neighbor entirely (it failed or was evicted).
    /// Returns `true` if the neighbor was one of our parents.
    pub fn neighbor_down(&mut self, peer: NodeId) -> bool {
        self.neighbors.remove(&peer);
        self.inbound_deactivated.remove(&peer);
        self.outbound_inactive.remove(&peer);
        self.parents.remove(&peer)
    }

    /// True if `peer` is a current overlay neighbor.
    pub fn is_neighbor(&self, peer: NodeId) -> bool {
        self.neighbors.contains(&peer)
    }

    /// All current overlay neighbors.
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors.iter().copied()
    }

    /// Number of overlay neighbors.
    pub fn neighbor_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Current parents (selected inbound links).
    pub fn parents(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.parents.iter().copied()
    }

    /// Number of current parents.
    pub fn parent_count(&self) -> usize {
        self.parents.len()
    }

    /// True if `peer` is one of our parents.
    pub fn is_parent(&self, peer: NodeId) -> bool {
        self.parents.contains(&peer)
    }

    /// Adopts `peer` as a parent (also re-activates its inbound link).
    pub fn adopt_parent(&mut self, peer: NodeId) {
        self.parents.insert(peer);
        self.inbound_deactivated.remove(&peer);
    }

    /// Drops `peer` from the parent set without touching the neighbor entry.
    pub fn drop_parent(&mut self, peer: NodeId) -> bool {
        self.parents.remove(&peer)
    }

    /// Marks the inbound link from `peer` as deactivated (we asked it to
    /// stop relaying to us).
    pub fn deactivate_inbound(&mut self, peer: NodeId) {
        self.inbound_deactivated.insert(peer);
        self.parents.remove(&peer);
    }

    /// Re-activates the inbound link from `peer`.
    pub fn reactivate_inbound(&mut self, peer: NodeId) {
        self.inbound_deactivated.remove(&peer);
    }

    /// Re-activates every inbound link (soft/hard repair fallback).
    pub fn reactivate_all_inbound(&mut self) {
        self.inbound_deactivated.clear();
    }

    /// Neighbors whose inbound link is still active (they may relay stream
    /// data to us).
    pub fn inbound_active(&self) -> Vec<NodeId> {
        self.neighbors
            .iter()
            .copied()
            .filter(|p| !self.inbound_deactivated.contains(p))
            .collect()
    }

    /// Number of neighbors whose inbound link is still active.
    pub fn inbound_active_count(&self) -> usize {
        self.neighbors
            .iter()
            .filter(|p| !self.inbound_deactivated.contains(p))
            .count()
    }

    /// Marks the outbound link towards `peer` inactive (it asked us to stop
    /// relaying to it).
    pub fn deactivate_outbound(&mut self, peer: NodeId) {
        self.outbound_inactive.insert(peer);
    }

    /// Re-activates the outbound link towards `peer`.
    pub fn reactivate_outbound(&mut self, peer: NodeId) {
        self.outbound_inactive.remove(&peer);
    }

    /// True if this node currently relays stream data to `peer`.
    pub fn is_outbound_active(&self, peer: NodeId) -> bool {
        self.neighbors.contains(&peer) && !self.outbound_inactive.contains(&peer)
    }

    /// Neighbors this node relays stream data to (outbound-active links).
    pub fn outbound_active(&self) -> Vec<NodeId> {
        self.neighbors
            .iter()
            .copied()
            .filter(|p| !self.outbound_inactive.contains(p))
            .collect()
    }

    /// Children in the emerged structure: outbound-active neighbors that are
    /// not parents. Their number is the node's degree (Figure 7).
    pub fn children(&self) -> Vec<NodeId> {
        self.neighbors
            .iter()
            .copied()
            .filter(|p| !self.outbound_inactive.contains(p) && !self.parents.contains(p))
            .collect()
    }

    /// Number of children (the node's out-degree in the structure).
    pub fn degree(&self) -> usize {
        self.children().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_neighbors_are_fully_active() {
        let mut l = Links::new();
        l.neighbor_up(NodeId(1));
        l.neighbor_up(NodeId(2));
        assert!(l.is_neighbor(NodeId(1)));
        assert_eq!(l.inbound_active_count(), 2);
        assert_eq!(l.outbound_active().len(), 2);
        assert_eq!(l.degree(), 2);
        assert_eq!(l.parent_count(), 0);
    }

    #[test]
    fn adopt_and_drop_parent() {
        let mut l = Links::new();
        l.neighbor_up(NodeId(1));
        l.adopt_parent(NodeId(1));
        assert!(l.is_parent(NodeId(1)));
        assert_eq!(
            l.children(),
            Vec::<NodeId>::new(),
            "parents are not children"
        );
        assert!(l.drop_parent(NodeId(1)));
        assert!(!l.drop_parent(NodeId(1)));
        assert_eq!(l.degree(), 1);
    }

    #[test]
    fn deactivation_bookkeeping() {
        let mut l = Links::new();
        for i in 1..=3 {
            l.neighbor_up(NodeId(i));
        }
        l.adopt_parent(NodeId(1));
        l.deactivate_inbound(NodeId(2));
        l.deactivate_inbound(NodeId(3));
        assert_eq!(l.inbound_active(), vec![NodeId(1)]);
        assert_eq!(l.inbound_active_count(), 1);
        l.reactivate_inbound(NodeId(2));
        assert_eq!(l.inbound_active_count(), 2);
        l.reactivate_all_inbound();
        assert_eq!(l.inbound_active_count(), 3);
        // Deactivating the inbound link of a parent also drops it as parent.
        l.deactivate_inbound(NodeId(1));
        assert!(!l.is_parent(NodeId(1)));
    }

    #[test]
    fn outbound_deactivation_shrinks_children() {
        let mut l = Links::new();
        for i in 1..=3 {
            l.neighbor_up(NodeId(i));
        }
        l.adopt_parent(NodeId(1));
        l.deactivate_outbound(NodeId(2));
        assert!(!l.is_outbound_active(NodeId(2)));
        assert!(l.is_outbound_active(NodeId(3)));
        assert_eq!(l.children(), vec![NodeId(3)]);
        assert_eq!(l.degree(), 1);
        l.reactivate_outbound(NodeId(2));
        assert_eq!(l.degree(), 2);
    }

    #[test]
    fn neighbor_down_cleans_up_and_reports_parent_loss() {
        let mut l = Links::new();
        l.neighbor_up(NodeId(1));
        l.neighbor_up(NodeId(2));
        l.adopt_parent(NodeId(1));
        l.deactivate_outbound(NodeId(2));
        assert!(l.neighbor_down(NodeId(1)), "losing a parent is reported");
        assert!(!l.neighbor_down(NodeId(2)), "losing a non-parent is not");
        assert_eq!(l.neighbor_count(), 0);
        // Re-adding a neighbor that had a deactivated link starts fresh.
        l.neighbor_up(NodeId(2));
        assert!(l.is_outbound_active(NodeId(2)));
    }

    #[test]
    fn non_neighbor_is_never_outbound_active() {
        let l = Links::new();
        assert!(!l.is_outbound_active(NodeId(9)));
    }
}
