//! Cycle prevention for the emerging dissemination structure.
//!
//! A parent candidate is only acceptable if adopting it cannot create a
//! cycle (which would disconnect part of the structure from the source).
//! The paper uses two mechanisms:
//!
//! * **Path embedding** (trees, Section II-D): every relayed message carries
//!   the identifiers of the nodes on the path from the source. A candidate
//!   is rejected if the receiving node appears in that path. Exact, and
//!   cheap because the path length is bounded by the tree height
//!   (`O(log_b N)`).
//! * **Depth labels** (DAGs, Section II-G): every message carries only the
//!   sender's depth. A node first hearing from a sender at depth `i-1`
//!   places itself at depth `i` and only accepts parents with a strictly
//!   smaller depth; hearing from a node at its own depth pushes it one
//!   level deeper. Approximate (false negatives possible) but constant-size.
//!
//! A [`BloomMembership`] implementation is also provided, purely for the
//! cycle-prevention ablation bench: the paper argues path embedding beats
//! Bloom filters on metadata size and exactness, and the ablation reproduces
//! that comparison.

use brisa_simnet::NodeId;
use serde::{Deserialize, Serialize};

/// Metadata attached to every stream message for cycle prevention.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CycleGuard {
    /// Identifiers of the nodes traversed from the source (exclusive of the
    /// receiver), most recent last. Used in tree mode.
    Path(Vec<NodeId>),
    /// Depth of the *sender* in the DAG (the source is at depth 0).
    Depth(u32),
}

impl CycleGuard {
    /// Metadata size on the wire in bytes: a one-byte guard kind, then
    /// either an explicit `u16` hop count followed by the path entries, or a
    /// `u32` depth. This matches `runtime::wire`'s encoding byte for byte
    /// (asserted by the codec tests), so the simulator's bandwidth
    /// accounting charges exactly what a live transport carries.
    pub fn wire_size(&self) -> usize {
        match self {
            CycleGuard::Path(p) => 1 + 2 + p.len() * NodeId::WIRE_SIZE,
            CycleGuard::Depth(_) => 1 + 4,
        }
    }

    /// Number of hops from the source implied by this guard (path length or
    /// depth value).
    pub fn hops(&self) -> usize {
        match self {
            CycleGuard::Path(p) => p.len(),
            CycleGuard::Depth(d) => *d as usize,
        }
    }
}

/// The cycle-detection state a node keeps for itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleState {
    /// Tree mode: the path from the source to this node (inclusive of this
    /// node), unknown until the first message is received.
    Path(Option<Vec<NodeId>>),
    /// DAG mode: this node's depth, unknown until the first message is
    /// received.
    Depth(Option<u32>),
}

impl CycleState {
    /// Fresh state for tree mode.
    pub fn tree() -> Self {
        CycleState::Path(None)
    }

    /// Fresh state for DAG mode.
    pub fn dag() -> Self {
        CycleState::Depth(None)
    }

    /// True if the node has not yet positioned itself in the structure.
    pub fn is_unset(&self) -> bool {
        matches!(self, CycleState::Path(None) | CycleState::Depth(None))
    }

    /// Forgets the node's position. Used by the hard-repair mechanism, which
    /// lets an orphan re-attach anywhere ("considers itself a fresh node by
    /// forgetting its position in the cycle detection mechanism").
    pub fn reset(&mut self) {
        match self {
            CycleState::Path(p) => *p = None,
            CycleState::Depth(d) => *d = None,
        }
    }

    /// Positions this node as the root of the structure (the stream source):
    /// path `[me]` in tree mode, depth 0 in DAG mode.
    pub fn set_root(&mut self, me: NodeId) {
        match self {
            CycleState::Path(p) => *p = Some(vec![me]),
            CycleState::Depth(d) => *d = Some(0),
        }
    }

    /// Whether a message carrying `guard` (sent by `sender`) is acceptable
    /// for `me`, i.e. taking `sender` as a parent cannot create a cycle.
    ///
    /// * Path mode: `me` must not appear in the sender's path.
    /// * Depth mode: the sender's depth must not be greater than this node's
    ///   depth (Section II-G: "N can select parents from nodes at any depth
    ///   not greater than i"; accepting an equal-depth parent immediately
    ///   pushes this node one level deeper, see
    ///   [`CycleState::position_after`]). An unknown depth accepts anything.
    pub fn permits(&self, me: NodeId, guard: &CycleGuard) -> bool {
        match (self, guard) {
            (CycleState::Path(_), CycleGuard::Path(path)) => !path.contains(&me),
            (CycleState::Depth(my_depth), CycleGuard::Depth(sender_depth)) => match my_depth {
                None => true,
                Some(d) => sender_depth <= d,
            },
            // Mixed modes never occur in a well-configured system; be
            // conservative and reject.
            _ => false,
        }
    }

    /// Updates the node's position after *delivering* a message carrying
    /// `guard` from an accepted parent. Returns `true` if the position
    /// changed (DAG nodes must then push a depth update to their children).
    pub fn position_after(&mut self, me: NodeId, guard: &CycleGuard) -> bool {
        match (self, guard) {
            (CycleState::Path(my_path), CycleGuard::Path(path)) => {
                let mut new_path = path.clone();
                new_path.push(me);
                let changed = my_path.as_ref() != Some(&new_path);
                *my_path = Some(new_path);
                changed
            }
            (CycleState::Depth(my_depth), CycleGuard::Depth(sender_depth)) => {
                let new_depth = sender_depth + 1;
                match my_depth {
                    None => {
                        *my_depth = Some(new_depth);
                        true
                    }
                    Some(d) if new_depth > *d => {
                        // Receiving from a node at our own depth (or deeper)
                        // pushes us further down, per Section II-G.
                        *my_depth = Some(new_depth);
                        true
                    }
                    Some(_) => false,
                }
            }
            _ => false,
        }
    }

    /// The guard this node must attach to messages it relays.
    pub fn outgoing_guard(&self, me: NodeId) -> CycleGuard {
        match self {
            CycleState::Path(Some(p)) => CycleGuard::Path(p.clone()),
            CycleState::Path(None) => CycleGuard::Path(vec![me]),
            CycleState::Depth(Some(d)) => CycleGuard::Depth(*d),
            CycleState::Depth(None) => CycleGuard::Depth(0),
        }
    }

    /// This node's current depth (DAG mode) or path length (tree mode), if
    /// positioned.
    pub fn position(&self) -> Option<usize> {
        match self {
            CycleState::Path(Some(p)) => Some(p.len().saturating_sub(1)),
            CycleState::Depth(Some(d)) => Some(*d as usize),
            _ => None,
        }
    }
}

/// A plain Bloom filter over node identifiers.
///
/// Not used by the protocol itself — the paper explicitly prefers path
/// embedding / depth labels — but implemented so the cycle-prevention
/// ablation (`ablation_cycle_prevention`) can compare metadata size and
/// false-positive behaviour, mirroring the discussion in Section II-D.
#[derive(Debug, Clone)]
pub struct BloomMembership {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: usize,
}

impl BloomMembership {
    /// Creates a filter sized for `expected_items` entries at the given
    /// false-positive probability, using the standard optimal sizing
    /// formulas (`m = -n ln p / (ln 2)^2`, `k = m/n ln 2`).
    pub fn with_false_positive_rate(expected_items: usize, fp_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = fp_rate.clamp(1e-12, 0.5);
        let m = (-(n * p.ln()) / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil() as usize;
        let k = ((m as f64 / n) * std::f64::consts::LN_2).round().max(1.0) as usize;
        BloomMembership {
            bits: vec![0u64; m.div_ceil(64).max(1)],
            num_bits: m.max(64),
            num_hashes: k,
        }
    }

    /// Number of bits in the filter (the metadata size the paper compares
    /// against path embedding).
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Size of the filter in bytes.
    pub fn wire_size(&self) -> usize {
        self.num_bits.div_ceil(8)
    }

    fn indexes(&self, node: NodeId) -> impl Iterator<Item = usize> + '_ {
        // Double hashing: h_i = h1 + i * h2.
        let x = node.0 as u64;
        let h1 = x
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x2545_F491_4F6C_DD1D);
        let h2 = (x ^ 0xDEAD_BEEF_CAFE_BABE).wrapping_mul(0xC2B2_AE3D_27D4_EB4F) | 1;
        let num_bits = self.num_bits as u64;
        (0..self.num_hashes as u64)
            .map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % num_bits) as usize)
    }

    /// Inserts `node` into the filter.
    pub fn insert(&mut self, node: NodeId) {
        let idx: Vec<usize> = self.indexes(node).collect();
        for i in idx {
            self.bits[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// True if `node` may be in the set (false positives possible, false
    /// negatives impossible).
    pub fn contains(&self, node: NodeId) -> bool {
        self.indexes(node)
            .all(|i| self.bits[i / 64] & (1u64 << (i % 64)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_guard_rejects_nodes_on_the_path() {
        let st = CycleState::tree();
        let guard = CycleGuard::Path(vec![NodeId(0), NodeId(3), NodeId(7)]);
        assert!(
            !st.permits(NodeId(3), &guard),
            "node on the path is rejected"
        );
        assert!(
            st.permits(NodeId(5), &guard),
            "node off the path is accepted"
        );
    }

    #[test]
    fn path_position_appends_self() {
        let mut st = CycleState::tree();
        assert!(st.is_unset());
        let guard = CycleGuard::Path(vec![NodeId(0), NodeId(3)]);
        let changed = st.position_after(NodeId(9), &guard);
        assert!(changed);
        assert_eq!(st.position(), Some(2));
        assert_eq!(
            st.outgoing_guard(NodeId(9)),
            CycleGuard::Path(vec![NodeId(0), NodeId(3), NodeId(9)])
        );
        // Same position again: no change reported.
        assert!(!st.position_after(NodeId(9), &guard));
    }

    #[test]
    fn depth_guard_rejects_deeper_senders() {
        let mut st = CycleState::dag();
        assert!(
            st.permits(NodeId(1), &CycleGuard::Depth(5)),
            "unset depth accepts anything"
        );
        st.position_after(NodeId(1), &CycleGuard::Depth(2)); // we are now at depth 3
        assert!(st.permits(NodeId(1), &CycleGuard::Depth(2)));
        assert!(st.permits(NodeId(1), &CycleGuard::Depth(0)));
        assert!(
            st.permits(NodeId(1), &CycleGuard::Depth(3)),
            "same depth accepted (the node then moves one level deeper)"
        );
        assert!(
            !st.permits(NodeId(1), &CycleGuard::Depth(4)),
            "deeper node rejected"
        );
        assert!(
            !st.permits(NodeId(1), &CycleGuard::Depth(9)),
            "deeper node rejected"
        );
    }

    #[test]
    fn depth_moves_down_when_hearing_from_same_depth() {
        let mut st = CycleState::dag();
        st.position_after(NodeId(1), &CycleGuard::Depth(1)); // depth 2
        assert_eq!(st.position(), Some(2));
        // A message from a node at depth 2 (our own depth) pushes us to 3.
        let changed = st.position_after(NodeId(1), &CycleGuard::Depth(2));
        assert!(changed);
        assert_eq!(st.position(), Some(3));
        // A message from a shallower node does not pull us back up.
        assert!(!st.position_after(NodeId(1), &CycleGuard::Depth(0)));
        assert_eq!(st.position(), Some(3));
    }

    #[test]
    fn reset_forgets_position() {
        let mut st = CycleState::tree();
        st.position_after(NodeId(4), &CycleGuard::Path(vec![NodeId(0)]));
        assert!(!st.is_unset());
        st.reset();
        assert!(st.is_unset());
        assert_eq!(st.position(), None);
        // After a reset any candidate is acceptable again (hard repair).
        assert!(!st.permits(NodeId(4), &CycleGuard::Path(vec![NodeId(0), NodeId(4)])));
        // Path mode stays exact even after reset: the check is on the
        // incoming path, which still contains us.
        let mut dag = CycleState::dag();
        dag.position_after(NodeId(4), &CycleGuard::Depth(0));
        dag.reset();
        assert!(dag.permits(NodeId(4), &CycleGuard::Depth(10)));
    }

    #[test]
    fn guards_report_sizes_and_hops() {
        let p = CycleGuard::Path(vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(p.wire_size(), 1 + 2 + 3 * NodeId::WIRE_SIZE);
        assert_eq!(p.hops(), 3);
        let d = CycleGuard::Depth(9);
        assert_eq!(d.wire_size(), 5);
        assert_eq!(d.hops(), 9);
    }

    #[test]
    fn unset_outgoing_guards() {
        let t = CycleState::tree();
        assert_eq!(
            t.outgoing_guard(NodeId(5)),
            CycleGuard::Path(vec![NodeId(5)])
        );
        let d = CycleState::dag();
        assert_eq!(d.outgoing_guard(NodeId(5)), CycleGuard::Depth(0));
    }

    #[test]
    fn bloom_has_no_false_negatives_and_expected_size() {
        let mut bloom = BloomMembership::with_false_positive_rate(1000, 1e-3);
        for i in 0..1000u32 {
            bloom.insert(NodeId(i));
        }
        for i in 0..1000u32 {
            assert!(bloom.contains(NodeId(i)), "no false negatives");
        }
        // False positive rate should be in the right ballpark (allow 10x).
        let fps = (10_000..20_000u32)
            .filter(|&i| bloom.contains(NodeId(i)))
            .count();
        assert!(fps < 100, "false positives way above target: {fps}");
        // The paper's point: the filter is orders of magnitude larger than a
        // short path (7 hops * 6 bytes = 42 bytes).
        assert!(bloom.wire_size() > 1000);
    }

    #[test]
    fn bloom_size_matches_paper_example_order_of_magnitude() {
        // 1e6 nodes at 1e-6 false positive probability: the paper quotes
        // 28,755,176 bits. Our sizing formula should land within a few
        // percent of that.
        let bloom = BloomMembership::with_false_positive_rate(1_000_000, 1e-6);
        let bits = bloom.num_bits() as f64;
        assert!(
            (bits - 28_755_176.0).abs() / 28_755_176.0 < 0.05,
            "bits = {bits}"
        );
    }

    #[test]
    fn mixed_modes_are_rejected() {
        let t = CycleState::tree();
        assert!(!t.permits(NodeId(0), &CycleGuard::Depth(1)));
        let mut t2 = CycleState::tree();
        assert!(!t2.position_after(NodeId(0), &CycleGuard::Depth(1)));
        let d = CycleState::dag();
        assert!(!d.permits(NodeId(0), &CycleGuard::Path(vec![])));
    }
}
