//! Parent candidate tracking and selection strategies.
//!
//! During the bootstrap flood (and after repairs) a node hears the same
//! stream message from several neighbors. Each sender is a *candidate*
//! parent; the configured [`crate::config::ParentStrategy`] decides
//! which candidates are kept when the node has more eligible inbound links
//! than its target parent count.

use crate::config::ParentStrategy;
use brisa_simnet::{NodeId, SimDuration, SimTime};
use std::collections::HashMap;

/// Everything a node knows about one potential parent.
#[derive(Debug, Clone, PartialEq)]
pub struct ParentCandidate {
    /// The candidate neighbor.
    pub node: NodeId,
    /// When this candidate first delivered a stream message.
    pub first_heard: SimTime,
    /// Round-trip time measured by the PSS keep-alives, if available.
    pub rtt: Option<SimDuration>,
    /// Uptime advertised by the candidate on its data messages (seconds).
    pub uptime_secs: u32,
    /// Number of children the candidate advertised (its current load).
    pub load: u16,
}

/// Source of link-quality information about neighbors, implemented by the
/// membership layer (HyParView keep-alives) and by test doubles.
pub trait NeighborTelemetry {
    /// Last measured round-trip time to `peer`, if any.
    fn rtt(&self, peer: NodeId) -> Option<SimDuration>;
}

/// A telemetry source that knows nothing (used by unit tests and by
/// strategies that do not need link measurements).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoTelemetry;

impl NeighborTelemetry for NoTelemetry {
    fn rtt(&self, _peer: NodeId) -> Option<SimDuration> {
        None
    }
}

impl NeighborTelemetry for &brisa_membership::HyParView {
    fn rtt(&self, peer: NodeId) -> Option<SimDuration> {
        self.rtt_to(peer)
    }
}

/// The set of parent candidates a node currently knows about.
#[derive(Debug, Default)]
pub struct CandidateSet {
    candidates: HashMap<NodeId, ParentCandidate>,
}

impl CandidateSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or refreshes) a candidate observed at `now`.
    pub fn observe(
        &mut self,
        node: NodeId,
        now: SimTime,
        rtt: Option<SimDuration>,
        uptime_secs: u32,
        load: u16,
    ) {
        self.candidates
            .entry(node)
            .and_modify(|c| {
                c.rtt = rtt.or(c.rtt);
                c.uptime_secs = uptime_secs;
                c.load = load;
            })
            .or_insert(ParentCandidate {
                node,
                first_heard: now,
                rtt,
                uptime_secs,
                load,
            });
    }

    /// Removes a candidate (e.g. because the neighbor failed).
    pub fn remove(&mut self, node: NodeId) {
        self.candidates.remove(&node);
    }

    /// Forgets every candidate (hard repair).
    pub fn clear(&mut self) {
        self.candidates.clear();
    }

    /// The candidate entry for `node`, if present.
    pub fn get(&self, node: NodeId) -> Option<&ParentCandidate> {
        self.candidates.get(&node)
    }

    /// Number of known candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True if no candidates are known.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// All candidates, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &ParentCandidate> {
        self.candidates.values()
    }

    /// Ranks `eligible` candidates according to `strategy` and returns up to
    /// `count` of them, best first. Candidates not present in the set are
    /// ignored.
    pub fn select(
        &self,
        strategy: ParentStrategy,
        eligible: &[NodeId],
        count: usize,
    ) -> Vec<NodeId> {
        let mut pool: Vec<&ParentCandidate> = eligible
            .iter()
            .filter_map(|n| self.candidates.get(n))
            .collect();
        match strategy {
            ParentStrategy::FirstComeFirstPicked => {
                pool.sort_by_key(|c| (c.first_heard, c.node));
            }
            ParentStrategy::DelayAware => {
                // Lowest RTT first; candidates with unknown RTT rank last and
                // fall back to first-come order among themselves.
                pool.sort_by_key(|c| {
                    (
                        c.rtt.map(|r| r.as_micros()).unwrap_or(u64::MAX),
                        c.first_heard,
                        c.node,
                    )
                });
            }
            ParentStrategy::Gerontocratic => {
                // Highest uptime first.
                pool.sort_by_key(|c| (std::cmp::Reverse(c.uptime_secs), c.first_heard, c.node));
            }
            ParentStrategy::LoadBalancing => {
                // Lowest advertised load first.
                pool.sort_by_key(|c| (c.load, c.first_heard, c.node));
            }
        }
        pool.into_iter().take(count).map(|c| c.node).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> CandidateSet {
        let mut s = CandidateSet::new();
        s.observe(
            NodeId(1),
            SimTime::from_millis(10),
            Some(SimDuration::from_millis(40)),
            100,
            5,
        );
        s.observe(
            NodeId(2),
            SimTime::from_millis(20),
            Some(SimDuration::from_millis(5)),
            300,
            1,
        );
        s.observe(NodeId(3), SimTime::from_millis(30), None, 50, 0);
        s
    }

    #[test]
    fn first_come_orders_by_arrival() {
        let s = set();
        let all = [NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(
            s.select(ParentStrategy::FirstComeFirstPicked, &all, 3),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(
            s.select(ParentStrategy::FirstComeFirstPicked, &all, 1),
            vec![NodeId(1)]
        );
    }

    #[test]
    fn delay_aware_prefers_low_rtt_and_unknown_last() {
        let s = set();
        let all = [NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(
            s.select(ParentStrategy::DelayAware, &all, 3),
            vec![NodeId(2), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn gerontocratic_prefers_uptime_and_load_balancing_prefers_idle() {
        let s = set();
        let all = [NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(
            s.select(ParentStrategy::Gerontocratic, &all, 2),
            vec![NodeId(2), NodeId(1)]
        );
        assert_eq!(
            s.select(ParentStrategy::LoadBalancing, &all, 2),
            vec![NodeId(3), NodeId(2)]
        );
    }

    #[test]
    fn selection_respects_eligibility_filter() {
        let s = set();
        // Node 2 (best by delay) excluded from the eligible set.
        assert_eq!(
            s.select(ParentStrategy::DelayAware, &[NodeId(1), NodeId(3)], 2),
            vec![NodeId(1), NodeId(3)]
        );
        // Unknown nodes are ignored.
        assert_eq!(
            s.select(ParentStrategy::DelayAware, &[NodeId(99)], 2),
            Vec::<NodeId>::new()
        );
    }

    #[test]
    fn observe_refreshes_but_keeps_first_heard() {
        let mut s = set();
        s.observe(NodeId(1), SimTime::from_secs(10), None, 120, 9);
        let c = s.get(NodeId(1)).unwrap();
        assert_eq!(
            c.first_heard,
            SimTime::from_millis(10),
            "first_heard is sticky"
        );
        assert_eq!(c.uptime_secs, 120);
        assert_eq!(c.load, 9);
        assert_eq!(
            c.rtt,
            Some(SimDuration::from_millis(40)),
            "known RTT not erased by None"
        );
        assert_eq!(s.len(), 3);
        s.remove(NodeId(1));
        assert!(s.get(NodeId(1)).is_none());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn no_telemetry_reports_nothing() {
        assert_eq!(NoTelemetry.rtt(NodeId(1)), None);
    }
}
