//! BRISA configuration.

use brisa_simnet::SimDuration;
use serde::{Deserialize, Serialize};

/// Shape of the dissemination structure that emerges from the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StructureMode {
    /// Every node keeps exactly one parent; duplicates are eliminated and
    /// cycles are prevented by exact path embedding (Section II-D).
    Tree,
    /// Every node keeps up to `parents` parents; duplicates are bounded by
    /// the parent count and cycles are prevented by approximate depth labels
    /// (Section II-G).
    Dag {
        /// Target number of parents (`p > 1`).
        parents: usize,
    },
}

impl StructureMode {
    /// Target number of parents for this mode.
    pub fn target_parents(self) -> usize {
        match self {
            StructureMode::Tree => 1,
            StructureMode::Dag { parents } => parents.max(1),
        }
    }

    /// True for the tree mode.
    pub fn is_tree(self) -> bool {
        matches!(self, StructureMode::Tree)
    }
}

/// Parent selection strategy (Section II-E and the perspectives of
/// Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParentStrategy {
    /// The node that delivered the message first is kept as parent; every
    /// later duplicate sender is deactivated. Enables the symmetric
    /// deactivation optimisation.
    FirstComeFirstPicked,
    /// Among eligible candidates, prefer the one with the lowest measured
    /// round-trip time (taken from the PSS keep-alive probes).
    DelayAware,
    /// Prefer the candidate with the highest uptime, on the observation that
    /// long-lived nodes are likely to stay (Section IV, "gerontocratic").
    Gerontocratic,
    /// Prefer the candidate currently serving the fewest children, spreading
    /// the dissemination effort (Section IV, "load-balancing").
    LoadBalancing,
}

/// How much per-message delivery bookkeeping a node keeps (see
/// [`crate::delivery::DeliveryLog`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryTracking {
    /// Record the first-delivery time of every sequence number — the exact
    /// data the classic per-node result path consumes. Costs 8 bytes per
    /// message per node.
    Full,
    /// Scale mode: keep only the seen-bitmap (one bit per message) plus a
    /// fixed-footprint latency histogram computed against the known publish
    /// schedule (`stream_start_us + seq × interval_us`).
    Counters {
        /// Injection time of sequence number 0, in µs of simulated time.
        stream_start_us: u64,
        /// Interval between injections, in µs.
        interval_us: u64,
    },
}

/// Full configuration of a BRISA node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrisaConfig {
    /// Structure to emerge (tree or DAG).
    pub mode: StructureMode,
    /// Parent selection strategy.
    pub strategy: ParentStrategy,
    /// Number of recent stream messages each node buffers so that children
    /// recovering from a parent failure can request retransmissions.
    pub buffer_size: usize,
    /// Whether to apply the symmetric deactivation optimisation (only
    /// meaningful with [`ParentStrategy::FirstComeFirstPicked`]).
    pub symmetric_deactivation: bool,
    /// Delivery bookkeeping mode ([`DeliveryTracking::Full`] by default).
    pub tracking: DeliveryTracking,
    /// Period of the repair-supervision timer (soft-repair timeout
    /// escalation, hard-repair retries, and stream-edge advertisements).
    /// Million-node capacity runs stretch it: at that scale even a cheap
    /// half-second per-node tick dominates the simulator's event budget.
    pub repair_tick_period: SimDuration,
}

impl Default for BrisaConfig {
    fn default() -> Self {
        BrisaConfig {
            mode: StructureMode::Tree,
            strategy: ParentStrategy::FirstComeFirstPicked,
            buffer_size: 64,
            symmetric_deactivation: true,
            tracking: DeliveryTracking::Full,
            repair_tick_period: SimDuration::from_millis(500),
        }
    }
}

impl BrisaConfig {
    /// A tree configuration with the given strategy.
    pub fn tree(strategy: ParentStrategy) -> Self {
        BrisaConfig {
            mode: StructureMode::Tree,
            strategy,
            ..Default::default()
        }
    }

    /// A DAG configuration with `parents` parents and the given strategy.
    pub fn dag(parents: usize, strategy: ParentStrategy) -> Self {
        BrisaConfig {
            mode: StructureMode::Dag { parents },
            strategy,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parents_per_mode() {
        assert_eq!(StructureMode::Tree.target_parents(), 1);
        assert_eq!(StructureMode::Dag { parents: 3 }.target_parents(), 3);
        assert_eq!(StructureMode::Dag { parents: 0 }.target_parents(), 1);
        assert!(StructureMode::Tree.is_tree());
        assert!(!StructureMode::Dag { parents: 2 }.is_tree());
    }

    #[test]
    fn constructors() {
        let t = BrisaConfig::tree(ParentStrategy::DelayAware);
        assert!(t.mode.is_tree());
        assert_eq!(t.strategy, ParentStrategy::DelayAware);
        let d = BrisaConfig::dag(2, ParentStrategy::FirstComeFirstPicked);
        assert_eq!(d.mode.target_parents(), 2);
        assert!(d.symmetric_deactivation);
    }
}
