//! The full BRISA protocol stack, runnable on the simulator.
//!
//! [`BrisaNode`] composes the HyParView membership state machine with the
//! BRISA dissemination core into a single [`Protocol`] implementation:
//! HyParView neighbor events feed the BRISA link table, BRISA uses the
//! keep-alive RTT measurements for its delay-aware strategy, and both
//! protocols share the node's monitored connections for failure detection.

use crate::config::BrisaConfig;
use crate::core::BrisaCore;
use crate::message::{BrisaAction, BrisaMsg};
use brisa_membership::{HpvMsg, HpvOut, HyParView, HyParViewConfig};
use brisa_simnet::{Context, NodeId, Protocol, SimDuration, TimerTag, WireSize};
use rand::Rng;

/// Timer family used for the periodic HyParView passive-view shuffle.
pub const TIMER_SHUFFLE: u16 = 1;
/// Timer family used for the periodic keep-alive probes.
pub const TIMER_KEEPALIVE: u16 = 2;
/// Timer family used for repair supervision (soft-repair timeout escalation
/// and hard-repair retries). The period comes from
/// [`BrisaConfig::repair_tick_period`].
pub const TIMER_REPAIR: u16 = 3;

/// Wire messages of the combined HyParView + BRISA stack.
#[derive(Debug, Clone, PartialEq)]
pub enum StackMsg {
    /// Membership traffic.
    Hpv(HpvMsg),
    /// Dissemination traffic.
    Brisa(BrisaMsg),
}

impl WireSize for StackMsg {
    fn wire_size(&self) -> usize {
        match self {
            StackMsg::Hpv(m) => m.wire_size(),
            StackMsg::Brisa(m) => m.wire_size(),
        }
    }
}

/// One simulated node running HyParView + BRISA.
pub struct BrisaNode {
    hpv: HyParView,
    core: BrisaCore,
    contact: Option<NodeId>,
}

impl BrisaNode {
    /// Creates a node. `contact` is the existing node used to join the
    /// overlay (`None` for the very first node).
    pub fn new(
        id: NodeId,
        hpv_cfg: HyParViewConfig,
        brisa_cfg: BrisaConfig,
        contact: Option<NodeId>,
    ) -> Self {
        BrisaNode {
            hpv: HyParView::new(id, hpv_cfg),
            core: BrisaCore::new(id, brisa_cfg),
            contact,
        }
    }

    /// Marks this node as the stream source.
    pub fn mark_source(&mut self) {
        self.core.mark_source();
    }

    /// Read access to the membership layer.
    pub fn hyparview(&self) -> &HyParView {
        &self.hpv
    }

    /// Read access to the dissemination layer (parents, children, stats).
    pub fn brisa(&self) -> &BrisaCore {
        &self.core
    }

    /// Publishes the next stream message with `payload_bytes` of payload
    /// (source only). Call through [`brisa_simnet::Network::invoke`] so the
    /// resulting sends are routed through the simulator.
    pub fn publish(&mut self, ctx: &mut Context<'_, StackMsg>, payload_bytes: usize) {
        let actions = self.core.publish(ctx.now(), payload_bytes);
        self.apply_brisa_actions(ctx, actions);
    }

    fn apply_hpv_outs(&mut self, ctx: &mut Context<'_, StackMsg>, outs: Vec<HpvOut>) {
        let now = ctx.now();
        for out in outs {
            match out {
                HpvOut::Send { to, msg } => ctx.send(to, StackMsg::Hpv(msg)),
                HpvOut::OpenConnection(peer) => ctx.open_connection(peer),
                HpvOut::CloseConnection(peer) => ctx.close_connection(peer),
                HpvOut::NeighborUp(peer) => self.core.on_neighbor_up(peer),
                HpvOut::NeighborDown(peer) => {
                    let actions = self.core.on_neighbor_down(now, peer);
                    self.apply_brisa_actions(ctx, actions);
                }
            }
        }
    }

    fn apply_brisa_actions(&mut self, ctx: &mut Context<'_, StackMsg>, actions: Vec<BrisaAction>) {
        for action in actions {
            match action {
                BrisaAction::Send { to, msg } => ctx.send(to, StackMsg::Brisa(msg)),
                BrisaAction::Deliver { .. } => {
                    // Delivery bookkeeping lives in the core's statistics;
                    // nothing to do at the stack level.
                }
            }
        }
    }
}

impl Protocol for BrisaNode {
    type Message = StackMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, StackMsg>) {
        // Resolve observability handles once, from whatever registry the
        // driver attached (a disabled default otherwise).
        self.core.set_telemetry(ctx.telemetry());
        self.hpv.set_telemetry(ctx.telemetry());
        self.core.note_started(ctx.now());
        if let Some(contact) = self.contact {
            let outs = self.hpv.join(ctx.now(), contact);
            self.apply_hpv_outs(ctx, outs);
        }
        // Periodic maintenance timers, de-synchronised across nodes.
        let shuffle_period = self.hpv.config().shuffle_period;
        let keepalive_period = self.hpv.config().keepalive_period;
        let shuffle_offset =
            SimDuration::from_micros(ctx.rng().gen_range(0..shuffle_period.as_micros().max(1)));
        let keepalive_offset =
            SimDuration::from_micros(ctx.rng().gen_range(0..keepalive_period.as_micros().max(1)));
        ctx.set_timer(shuffle_offset, TimerTag::of_kind(TIMER_SHUFFLE));
        ctx.set_timer(keepalive_offset, TimerTag::of_kind(TIMER_KEEPALIVE));
        ctx.set_timer(
            self.core.config().repair_tick_period,
            TimerTag::of_kind(TIMER_REPAIR),
        );
    }

    fn on_message(&mut self, ctx: &mut Context<'_, StackMsg>, from: NodeId, msg: StackMsg) {
        match msg {
            StackMsg::Hpv(m) => {
                let now = ctx.now();
                let outs = self.hpv.handle(now, from, m, ctx.rng());
                self.apply_hpv_outs(ctx, outs);
            }
            StackMsg::Brisa(m) => {
                let actions = self.core.handle(ctx.now(), from, m, &&self.hpv);
                self.apply_brisa_actions(ctx, actions);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, StackMsg>, tag: TimerTag) {
        match tag.kind {
            TIMER_SHUFFLE => {
                self.hpv.note_shuffle(ctx.now());
                let outs = self.hpv.shuffle_tick(ctx.rng());
                self.apply_hpv_outs(ctx, outs);
                let period = self.hpv.config().shuffle_period;
                ctx.set_timer(period, TimerTag::of_kind(TIMER_SHUFFLE));
            }
            TIMER_KEEPALIVE => {
                // A node with *both* views empty is fully isolated: its
                // join was lost (a dial that died in a bootstrap storm, a
                // contact that crashed before replying) and no overlay
                // traffic can ever reach it again. Re-join through the
                // original contact. The both-views guard keeps this out of
                // ordinary operation: a join in flight holds the contact in
                // the active view optimistically, and any node that was
                // ever connected retains passive entries to recover with.
                if self.hpv.active_view().is_empty() && self.hpv.passive_view().is_empty() {
                    if let Some(contact) = self.contact {
                        let outs = self.hpv.join(ctx.now(), contact);
                        self.apply_hpv_outs(ctx, outs);
                    }
                }
                let outs = self.hpv.keepalive_tick(ctx.now());
                self.apply_hpv_outs(ctx, outs);
                let period = self.hpv.config().keepalive_period;
                ctx.set_timer(period, TimerTag::of_kind(TIMER_KEEPALIVE));
            }
            TIMER_REPAIR => {
                let actions = self.core.repair_tick(ctx.now());
                self.apply_brisa_actions(ctx, actions);
                ctx.set_timer(
                    self.core.config().repair_tick_period,
                    TimerTag::of_kind(TIMER_REPAIR),
                );
            }
            _ => {}
        }
    }

    fn on_link_down(&mut self, ctx: &mut Context<'_, StackMsg>, peer: NodeId) {
        let now = ctx.now();
        let outs = self.hpv.link_down(now, peer, ctx.rng());
        self.apply_hpv_outs(ctx, outs);
    }

    fn approx_state_bytes(&self) -> usize {
        self.hpv.approx_bytes() + self.core.approx_state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ParentStrategy, StructureMode};
    use brisa_simnet::latency::ClusterLatency;
    use brisa_simnet::{Network, NetworkConfig, SimTime};

    /// Builds a network of `n` BrisaNodes, bootstraps the overlay (node 0 is
    /// the contact and the source), and lets it stabilise.
    fn build(
        n: u32,
        hpv_cfg: HyParViewConfig,
        brisa_cfg: BrisaConfig,
    ) -> (Network<BrisaNode>, Vec<NodeId>) {
        let mut net: Network<BrisaNode> = Network::new(
            NetworkConfig {
                seed: 42,
                ..Default::default()
            },
            Box::new(ClusterLatency::default()),
        );
        let mut ids = Vec::new();
        let first = net.add_node(|id| {
            let mut node = BrisaNode::new(id, hpv_cfg.clone(), brisa_cfg.clone(), None);
            node.mark_source();
            node
        });
        ids.push(first);
        for i in 1..n {
            // Stagger joins slightly, as a deployment script would.
            let at = SimTime::from_millis(10 * i as u64);
            let id = net.add_node_at(at, {
                let hpv_cfg = hpv_cfg.clone();
                let brisa_cfg = brisa_cfg.clone();
                move |id| BrisaNode::new(id, hpv_cfg, brisa_cfg, Some(first))
            });
            ids.push(id);
        }
        net.run_until(SimTime::from_secs(30));
        (net, ids)
    }

    #[test]
    fn full_stack_disseminates_to_every_node() {
        let (mut net, ids) = build(
            32,
            HyParViewConfig::with_active_size(4),
            BrisaConfig::default(),
        );
        let source = ids[0];
        for i in 0..5 {
            let t = net.now() + brisa_simnet::SimDuration::from_millis(200 * (i + 1));
            net.run_until(t);
            net.invoke(source, |node, ctx| node.publish(ctx, 1024));
        }
        net.run_for(brisa_simnet::SimDuration::from_secs(10));
        for &id in &ids {
            let delivered = net.node(id).unwrap().brisa().stats().delivered;
            assert_eq!(delivered, 5, "node {id} must deliver every stream message");
        }
        // After stabilisation every non-source node has exactly one parent.
        for &id in ids.iter().skip(1) {
            assert_eq!(net.node(id).unwrap().brisa().parents().len(), 1);
        }
    }

    #[test]
    fn dag_stack_keeps_two_parents_where_possible() {
        let (mut net, ids) = build(
            32,
            HyParViewConfig::with_active_size(8),
            BrisaConfig::dag(2, ParentStrategy::FirstComeFirstPicked),
        );
        let source = ids[0];
        for i in 0..5 {
            let t = net.now() + brisa_simnet::SimDuration::from_millis(200 * (i + 1));
            net.run_until(t);
            net.invoke(source, |node, ctx| node.publish(ctx, 512));
        }
        net.run_for(brisa_simnet::SimDuration::from_secs(10));
        let with_two = ids
            .iter()
            .skip(1)
            .filter(|&&id| net.node(id).unwrap().brisa().parents().len() == 2)
            .count();
        assert!(
            with_two > ids.len() / 2,
            "most nodes should obtain the desired number of parents, got {with_two}"
        );
        assert_eq!(
            net.node(ids[0]).unwrap().brisa().config().mode,
            StructureMode::Dag { parents: 2 }
        );
    }

    #[test]
    fn crash_of_a_parent_is_repaired_and_stream_continues() {
        let (mut net, ids) = build(
            24,
            HyParViewConfig::with_active_size(4),
            BrisaConfig::default(),
        );
        let source = ids[0];
        for i in 0..3 {
            let t = net.now() + brisa_simnet::SimDuration::from_millis(200 * (i + 1));
            net.run_until(t);
            net.invoke(source, |node, ctx| node.publish(ctx, 256));
        }
        net.run_for(brisa_simnet::SimDuration::from_secs(5));
        // Crash a node that is someone's parent (and not the source).
        let victim = ids
            .iter()
            .skip(1)
            .copied()
            .find(|&id| !net.node(id).unwrap().brisa().children().is_empty())
            .expect("some non-source node has children");
        net.crash(victim);
        net.run_for(brisa_simnet::SimDuration::from_secs(5));
        // Keep streaming.
        for i in 0..3 {
            let t = net.now() + brisa_simnet::SimDuration::from_millis(200 * (i + 1));
            net.run_until(t);
            net.invoke(source, |node, ctx| node.publish(ctx, 256));
        }
        net.run_for(brisa_simnet::SimDuration::from_secs(10));
        for &id in ids.iter().filter(|&&id| id != victim) {
            let stats = net.node(id).unwrap().brisa().stats();
            assert_eq!(
                stats.delivered, 6,
                "node {id} missed messages after the crash"
            );
        }
        let repairs: u64 = ids
            .iter()
            .filter(|&&id| id != victim)
            .map(|&id| {
                let s = net.node(id).unwrap().brisa().stats();
                s.soft_repairs + s.hard_repairs
            })
            .sum();
        assert!(
            repairs >= 1,
            "at least one orphan repaired its connectivity"
        );
    }

    #[test]
    fn stack_wire_sizes_delegate() {
        assert_eq!(
            StackMsg::Hpv(HpvMsg::Join).wire_size(),
            HpvMsg::Join.wire_size()
        );
        assert_eq!(
            StackMsg::Brisa(BrisaMsg::Deactivate { symmetric: false }).wire_size(),
            BrisaMsg::Deactivate { symmetric: false }.wire_size()
        );
    }
}
