//! # brisa — efficient and reliable epidemic data dissemination
//!
//! A from-scratch reproduction of **BRISA** (Matos, Schiavoni, Felber,
//! Oliveira, Rivière — IEEE IPDPS 2012): a data dissemination system that
//! combines the robustness of gossip-based protocols with the efficiency of
//! structured overlays. Dissemination trees (or DAGs) *emerge* from an
//! underlying HyParView overlay through purely local link-deactivation
//! decisions, and the overlay doubles as the repair substrate when nodes
//! fail.
//!
//! ## Crate layout
//!
//! * [`BrisaCore`] — the sans-IO protocol state machine: flood bootstrap,
//!   duplicate-triggered link deactivation, parent selection strategies,
//!   cycle prevention (path embedding for trees, depth labels for DAGs),
//!   soft/hard repair and message recovery.
//! * [`BrisaNode`] — the full stack (HyParView + BRISA) implementing the
//!   simulator's [`brisa_simnet::Protocol`] trait; this is what experiments
//!   and the examples instantiate.
//! * [`config`], [`cycle`], [`parent`], [`links`], [`buffer`], [`stats`] —
//!   the individual protocol ingredients, each independently tested.
//!
//! ## Quick start
//!
//! ```
//! use brisa::{BrisaConfig, BrisaNode};
//! use brisa_membership::HyParViewConfig;
//! use brisa_simnet::{latency::ClusterLatency, Network, NetworkConfig, SimDuration, SimTime};
//!
//! // Build a 16-node overlay; node 0 is the contact point and the source.
//! let mut net: Network<BrisaNode> = Network::new(
//!     NetworkConfig::default(),
//!     Box::new(ClusterLatency::default()),
//! );
//! let source = net.add_node(|id| {
//!     let mut n = BrisaNode::new(id, HyParViewConfig::default(), BrisaConfig::default(), None);
//!     n.mark_source();
//!     n
//! });
//! for i in 1..16u64 {
//!     net.add_node_at(SimTime::from_millis(10 * i), move |id| {
//!         BrisaNode::new(id, HyParViewConfig::default(), BrisaConfig::default(), Some(source))
//!     });
//! }
//! net.run_until(SimTime::from_secs(20));
//!
//! // Publish a small stream and let it disseminate.
//! for _ in 0..3 {
//!     net.invoke(source, |node, ctx| node.publish(ctx, 1024));
//!     net.run_for(SimDuration::from_millis(500));
//! }
//! let delivered = net.node(source).unwrap().brisa().stats().delivered;
//! assert_eq!(delivered, 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod config;
mod core;
pub mod cycle;
pub mod delivery;
pub mod links;
pub mod message;
mod node;
pub mod parent;
pub mod stats;

pub use crate::core::{BrisaCore, RepairKind, HARD_REPAIR_RETRY, SOFT_REPAIR_TIMEOUT};
pub use buffer::MessageBuffer;
pub use config::{BrisaConfig, DeliveryTracking, ParentStrategy, StructureMode};
pub use cycle::{BloomMembership, CycleGuard, CycleState};
pub use delivery::DeliveryLog;
pub use links::Links;
pub use message::{BrisaAction, BrisaMsg, DataMsg, BRISA_HEADER_BYTES};
pub use node::{BrisaNode, StackMsg, TIMER_KEEPALIVE, TIMER_REPAIR, TIMER_SHUFFLE};
pub use parent::{CandidateSet, NeighborTelemetry, NoTelemetry, ParentCandidate};
pub use stats::BrisaStats;
