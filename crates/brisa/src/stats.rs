//! Per-node protocol statistics.
//!
//! Every metric the paper's evaluation reports is derived from these
//! counters: duplicate receptions (Figure 2), structure shape (Figures 6–8,
//! read from the link state), delivery times (Figure 9, Table II), repair
//! behaviour under churn (Table I, Figure 14) and construction time
//! (Figure 13).

use crate::config::DeliveryTracking;
use crate::delivery::DeliveryLog;
use brisa_simnet::SimTime;

/// Counters and timelines recorded by one BRISA node.
#[derive(Debug, Clone, Default)]
pub struct BrisaStats {
    /// Number of stream messages delivered to the application (first
    /// receptions).
    pub delivered: u64,
    /// Number of duplicate receptions (any reception after the first of the
    /// same sequence number).
    pub duplicates: u64,
    /// Per-sequence-number delivery ledger (first-reception times under
    /// [`DeliveryTracking::Full`], seen-bitmap + latency histogram under
    /// [`DeliveryTracking::Counters`]).
    pub delivery: DeliveryLog,
    /// Times at which this node lost a parent (failure of a node it was
    /// receiving the stream from).
    pub parents_lost: Vec<SimTime>,
    /// Times at which this node lost *all* parents (became an orphan).
    pub orphaned: Vec<SimTime>,
    /// Completed soft repairs (a replacement parent was available in the
    /// active view).
    pub soft_repairs: u64,
    /// Completed hard repairs (flood fallback with re-activation orders).
    pub hard_repairs: u64,
    /// Durations (in microseconds) between orphaning and the adoption of a
    /// new parent, for hard repairs.
    pub hard_repair_delays_us: Vec<u64>,
    /// Durations (in microseconds) between orphaning and the adoption of a
    /// new parent, for soft repairs.
    pub soft_repair_delays_us: Vec<u64>,
    /// Time the first deactivation message was sent (start of structure
    /// construction as defined for Figure 13).
    pub first_deactivation: Option<SimTime>,
    /// Time at which the number of active inbound links first reached the
    /// target parent count (end of structure construction).
    pub construction_done: Option<SimTime>,
    /// Number of retransmissions served to recovering children.
    pub retransmissions_served: u64,
    /// Number of messages recovered from a new parent after a repair.
    pub messages_recovered: u64,
    /// Number of retransmission requests issued by the steady-state gap
    /// detector (loss recovery outside the repair path).
    pub gap_retransmit_requests: u64,
    /// Number of deactivation messages sent.
    pub deactivations_sent: u64,
    /// Number of reactivation (Activate) messages sent.
    pub activations_sent: u64,
    /// Number of re-activation orders propagated to children.
    pub reactivation_orders_sent: u64,
}

impl BrisaStats {
    /// Creates empty statistics with the given delivery-tracking mode.
    pub fn with_tracking(tracking: DeliveryTracking) -> Self {
        BrisaStats {
            delivery: DeliveryLog::new(tracking),
            ..Default::default()
        }
    }

    /// Records the first delivery of `seq` at `now`; returns `true` if this
    /// was indeed the first reception.
    pub fn record_delivery(&mut self, seq: u64, now: SimTime) -> bool {
        if self.delivery.record(seq, now) {
            self.delivered += 1;
            true
        } else {
            self.duplicates += 1;
            false
        }
    }

    /// Average number of duplicates received per delivered message.
    pub fn duplicates_per_message(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.duplicates as f64 / self.delivered as f64
        }
    }

    /// Construction time as defined for Figure 13: from the first
    /// deactivation sent to the moment the inbound links stabilised on the
    /// target parent count.
    pub fn construction_time(&self) -> Option<brisa_simnet::SimDuration> {
        match (self.first_deactivation, self.construction_done) {
            (Some(start), Some(end)) if end >= start => Some(end - start),
            _ => None,
        }
    }

    /// Time of the first and last delivery, if any messages were delivered.
    /// The span between them is the per-node dissemination latency used in
    /// Table II.
    pub fn delivery_span(&self) -> Option<(SimTime, SimTime)> {
        self.delivery.span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisa_simnet::SimDuration;

    #[test]
    fn deliveries_and_duplicates() {
        let mut s = BrisaStats::default();
        assert!(s.record_delivery(0, SimTime::from_millis(5)));
        assert!(!s.record_delivery(0, SimTime::from_millis(9)));
        assert!(s.record_delivery(1, SimTime::from_millis(12)));
        assert_eq!(s.delivered, 2);
        assert_eq!(s.duplicates, 1);
        assert!((s.duplicates_per_message() - 0.5).abs() < 1e-9);
        let (first, last) = s.delivery_span().unwrap();
        assert_eq!(first, SimTime::from_millis(5));
        assert_eq!(last, SimTime::from_millis(12));
    }

    #[test]
    fn empty_stats_edge_cases() {
        let s = BrisaStats::default();
        assert_eq!(s.duplicates_per_message(), 0.0);
        assert!(s.delivery_span().is_none());
        assert!(s.construction_time().is_none());
    }

    #[test]
    fn construction_time_requires_both_endpoints() {
        let mut s = BrisaStats {
            first_deactivation: Some(SimTime::from_millis(100)),
            ..Default::default()
        };
        assert!(s.construction_time().is_none());
        s.construction_done = Some(SimTime::from_millis(180));
        assert_eq!(s.construction_time(), Some(SimDuration::from_millis(80)));
    }
}
