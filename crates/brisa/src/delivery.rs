//! Compact per-node delivery bookkeeping.
//!
//! Every BRISA node must answer two questions for each arriving sequence
//! number: *have I seen this before?* (duplicate suppression and the
//! relay-once rule) and *where does my contiguous prefix end?* (the gap
//! detector). The classic result path additionally wants the first-delivery
//! time of every sequence number; at 100 000 nodes × hundreds of messages
//! that hash map dominated the simulation's memory.
//!
//! [`DeliveryLog`] keeps the mandatory state in a sequence-indexed bitmap
//! (one bit per message) and makes the expensive part optional:
//!
//! * [`DeliveryTracking::Full`] — per-sequence first-delivery times in a
//!   dense vector (`8 bytes × messages`), the exact data the classic
//!   figures consume;
//! * [`DeliveryTracking::Counters`] — no per-sequence times at all; each
//!   first delivery is folded into a fixed-footprint
//!   [`LatencyHistogram`] against the
//!   known publish schedule, so a node costs `messages / 8` bytes of bitmap
//!   plus one histogram no matter how long the stream runs.

use crate::config::DeliveryTracking;
use brisa_metrics::LatencyHistogram;
use brisa_simnet::SimTime;

/// Sequence-indexed delivery ledger of one node.
#[derive(Debug, Clone)]
pub struct DeliveryLog {
    tracking: DeliveryTracking,
    /// One bit per sequence number: set after the first reception.
    seen: Vec<u64>,
    /// First-delivery time per sequence number in µs (`u64::MAX` = not
    /// delivered). Only populated under [`DeliveryTracking::Full`].
    times_us: Vec<u64>,
    /// Latency distribution against the publish schedule. Only fed under
    /// [`DeliveryTracking::Counters`].
    hist: LatencyHistogram,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl Default for DeliveryLog {
    fn default() -> Self {
        DeliveryLog::new(DeliveryTracking::Full)
    }
}

const NOT_DELIVERED: u64 = u64::MAX;

impl DeliveryLog {
    /// Creates an empty log with the given tracking mode.
    pub fn new(tracking: DeliveryTracking) -> Self {
        DeliveryLog {
            tracking,
            seen: Vec::new(),
            times_us: Vec::new(),
            hist: LatencyHistogram::new(),
            first: None,
            last: None,
        }
    }

    /// True if `seq` was delivered before.
    pub fn contains(&self, seq: u64) -> bool {
        let word = (seq / 64) as usize;
        self.seen
            .get(word)
            .is_some_and(|w| w & (1u64 << (seq % 64)) != 0)
    }

    /// Records a reception of `seq` at `now`. Returns `true` if this was the
    /// first reception.
    pub fn record(&mut self, seq: u64, now: SimTime) -> bool {
        let word = (seq / 64) as usize;
        let bit = 1u64 << (seq % 64);
        if self.seen.len() <= word {
            self.seen.resize(word + 1, 0);
        }
        if self.seen[word] & bit != 0 {
            return false;
        }
        self.seen[word] |= bit;
        self.first = Some(self.first.map_or(now, |f| f.min(now)));
        self.last = Some(self.last.map_or(now, |l| l.max(now)));
        match self.tracking {
            DeliveryTracking::Full => {
                let idx = seq as usize;
                if self.times_us.len() <= idx {
                    self.times_us.resize(idx + 1, NOT_DELIVERED);
                }
                self.times_us[idx] = now.as_micros();
            }
            DeliveryTracking::Counters {
                stream_start_us,
                interval_us,
            } => {
                let published_us = stream_start_us.saturating_add(interval_us.saturating_mul(seq));
                self.hist
                    .record_us(now.as_micros().saturating_sub(published_us));
            }
        }
        true
    }

    /// Times of the first and the last first-reception, if any.
    pub fn span(&self) -> Option<(SimTime, SimTime)> {
        Some((self.first?, self.last?))
    }

    /// `(sequence number, first reception time)` pairs in ascending sequence
    /// order. Empty under [`DeliveryTracking::Counters`] — the information
    /// is folded into [`DeliveryLog::latency_hist`] instead.
    pub fn iter_times(&self) -> impl Iterator<Item = (u64, SimTime)> + '_ {
        self.times_us
            .iter()
            .enumerate()
            .filter(|(_, &t)| t != NOT_DELIVERED)
            .map(|(seq, &t)| (seq as u64, SimTime::from_micros(t)))
    }

    /// The latency histogram against the publish schedule (empty under
    /// [`DeliveryTracking::Full`]).
    pub fn latency_hist(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Heap + inline bytes this log occupies — the term a node contributes
    /// to the scale-mode bytes-per-node accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.seen.capacity() * std::mem::size_of::<u64>()
            + self.times_us.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_tracking_records_times() {
        let mut log = DeliveryLog::default();
        assert!(log.record(3, SimTime::from_millis(30)));
        assert!(log.record(1, SimTime::from_millis(10)));
        assert!(!log.record(3, SimTime::from_millis(40)), "duplicate");
        assert!(log.contains(1));
        assert!(log.contains(3));
        assert!(!log.contains(0));
        assert!(!log.contains(1000));
        let times: Vec<(u64, SimTime)> = log.iter_times().collect();
        assert_eq!(
            times,
            vec![(1, SimTime::from_millis(10)), (3, SimTime::from_millis(30))]
        );
        assert_eq!(
            log.span(),
            Some((SimTime::from_millis(10), SimTime::from_millis(30)))
        );
        assert!(log.latency_hist().is_empty());
    }

    #[test]
    fn counters_tracking_fills_histogram_not_times() {
        let mut log = DeliveryLog::new(DeliveryTracking::Counters {
            stream_start_us: 1_000_000,
            interval_us: 200_000,
        });
        // seq 2 published at 1.4 s, delivered at 1.45 s → 50 ms latency.
        assert!(log.record(2, SimTime::from_micros(1_450_000)));
        assert!(!log.record(2, SimTime::from_micros(1_500_000)));
        assert_eq!(log.iter_times().count(), 0);
        assert_eq!(log.latency_hist().count(), 1);
        assert!((log.latency_hist().mean_ms() - 50.0).abs() < 1e-9);
        assert!(log.contains(2));
        assert!(log.span().is_some());
    }

    #[test]
    fn counters_footprint_is_bitmap_sized() {
        let mut log = DeliveryLog::new(DeliveryTracking::Counters {
            stream_start_us: 0,
            interval_us: 1,
        });
        for seq in 0..10_000u64 {
            log.record(seq, SimTime::from_micros(seq + 5));
        }
        // 10_000 bits ≈ 1.25 KB of bitmap; no per-seq times.
        assert!(log.approx_bytes() < 3 * 1024, "{}", log.approx_bytes());
        let mut full = DeliveryLog::default();
        for seq in 0..10_000u64 {
            full.record(seq, SimTime::from_micros(seq + 5));
        }
        assert!(full.approx_bytes() > 80 * 1024, "{}", full.approx_bytes());
    }
}
