//! Bounded buffer of recent stream messages.
//!
//! Parents keep a small window of recently relayed messages so that a child
//! that just recovered from a parent failure can ask for the ones it missed
//! (Section II-F: "nodes can compensate message loss during the parent
//! recovery process by directly asking its new found parent to send the
//! missing ones"). Recovery is fast, so the window stays small.

use crate::message::DataMsg;
use std::collections::VecDeque;
use std::sync::Arc;

/// A bounded FIFO buffer of stream messages indexed by sequence number.
///
/// Messages are stored behind `Arc` so buffering a relayed message shares
/// the allocation with the in-flight copies instead of cloning the payload
/// metadata (notably the tree-mode path vector).
#[derive(Debug, Clone)]
pub struct MessageBuffer {
    capacity: usize,
    messages: VecDeque<Arc<DataMsg>>,
}

impl MessageBuffer {
    /// Creates a buffer holding at most `capacity` messages.
    pub fn new(capacity: usize) -> Self {
        MessageBuffer {
            capacity: capacity.max(1),
            messages: VecDeque::new(),
        }
    }

    /// Maximum number of messages retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True if the buffer holds no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Inserts a message, evicting the oldest one if the buffer is full.
    /// Messages already present (same sequence number) are not duplicated.
    pub fn insert(&mut self, msg: Arc<DataMsg>) {
        if self.messages.iter().any(|m| m.seq == msg.seq) {
            return;
        }
        if self.messages.len() == self.capacity {
            self.messages.pop_front();
        }
        self.messages.push_back(msg);
    }

    /// The buffered message with sequence number `seq`, if still retained.
    pub fn get(&self, seq: u64) -> Option<&Arc<DataMsg>> {
        self.messages.iter().find(|m| m.seq == seq)
    }

    /// All buffered messages with sequence numbers in `[from, to]`
    /// (inclusive), in ascending order.
    pub fn range(&self, from: u64, to: u64) -> Vec<Arc<DataMsg>> {
        let mut found: Vec<Arc<DataMsg>> = self
            .messages
            .iter()
            .filter(|m| m.seq >= from && m.seq <= to)
            .cloned()
            .collect();
        found.sort_by_key(|m| m.seq);
        found
    }

    /// Highest buffered sequence number, if any.
    pub fn highest_seq(&self) -> Option<u64> {
        self.messages.iter().map(|m| m.seq).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::CycleGuard;

    fn msg(seq: u64) -> Arc<DataMsg> {
        Arc::new(DataMsg {
            seq,
            payload_bytes: 100,
            guard: CycleGuard::Depth(1),
            sender_uptime_secs: 0,
            sender_load: 0,
        })
    }

    #[test]
    fn insert_get_and_capacity_eviction() {
        let mut b = MessageBuffer::new(3);
        assert!(b.is_empty());
        for s in 0..5 {
            b.insert(msg(s));
        }
        assert_eq!(b.len(), 3);
        assert!(b.get(0).is_none(), "oldest evicted");
        assert!(b.get(1).is_none());
        assert!(b.get(2).is_some());
        assert_eq!(b.highest_seq(), Some(4));
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn duplicate_sequence_numbers_are_ignored() {
        let mut b = MessageBuffer::new(4);
        b.insert(msg(1));
        b.insert(msg(1));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn range_returns_sorted_window() {
        let mut b = MessageBuffer::new(10);
        for s in [5u64, 3, 9, 7, 4] {
            b.insert(msg(s));
        }
        let r = b.range(4, 7);
        let seqs: Vec<u64> = r.iter().map(|m| m.seq).collect();
        assert_eq!(seqs, vec![4, 5, 7]);
        assert!(b.range(100, 200).is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut b = MessageBuffer::new(0);
        b.insert(msg(0));
        assert_eq!(b.len(), 1);
        b.insert(msg(1));
        assert_eq!(b.len(), 1);
        assert_eq!(b.highest_seq(), Some(1));
    }
}
